#include "fd/safety_margin.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::fd {

CiSafetyMargin::CiSafetyMargin(double gamma, std::string label)
    : label_(std::move(label)), gamma_(gamma) {
  FDQOS_REQUIRE(gamma > 0.0);
  if (label_.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "CI(%g)", gamma_);
    name_ = buf;
  } else {
    name_ = "CI_" + label_;
  }
}

void CiSafetyMargin::observe(double obs, double /*prediction_for_obs*/) {
  ++n_;
  const double delta = obs - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (obs - mean_);
  last_obs_ = obs;
}

double CiSafetyMargin::margin() const {
  if (n_ < 2) return 0.0;
  const double sigma = std::sqrt(m2_ / static_cast<double>(n_ - 1));
  const double dev = last_obs_ - mean_;
  double inflation = 1.0 + 1.0 / static_cast<double>(n_);
  if (m2_ > 0.0) inflation += dev * dev / m2_;
  return gamma_ * sigma * std::sqrt(inflation);
}

std::unique_ptr<SafetyMargin> CiSafetyMargin::make_fresh() const {
  return std::make_unique<CiSafetyMargin>(gamma_, label_);
}

JacobsonSafetyMargin::JacobsonSafetyMargin(double phi, double alpha,
                                           std::string label)
    : label_(std::move(label)), phi_(phi), alpha_(alpha) {
  FDQOS_REQUIRE(phi > 0.0);
  FDQOS_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  if (label_.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "JAC(%g)", phi_);
    name_ = buf;
  } else {
    name_ = "JAC_" + label_;
  }
}

void JacobsonSafetyMargin::observe(double obs, double prediction_for_obs) {
  const double abs_err = std::fabs(obs - prediction_for_obs);
  // v ← v + α(|err| − v). φ scales the *output* (sm = φ·v): scaling inside
  // the recursion, as a literal reading of the paper's formula would do,
  // diverges geometrically for φ(1−α) > 1 (e.g. φ = 4, α = 1/4); the
  // Jacobson scheme the paper cites ([13], and Bertier et al. [2]) keeps
  // the EWMA unscaled and multiplies at use. Documented in DESIGN.md.
  deviation_ += alpha_ * (abs_err - deviation_);
}

std::unique_ptr<SafetyMargin> JacobsonSafetyMargin::make_fresh() const {
  return std::make_unique<JacobsonSafetyMargin>(phi_, alpha_, label_);
}

RmsSafetyMargin::RmsSafetyMargin(double gamma, double alpha, std::string label)
    : label_(std::move(label)), gamma_(gamma), alpha_(alpha) {
  FDQOS_REQUIRE(gamma > 0.0);
  FDQOS_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  if (label_.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "RMS(%g)", gamma_);
    name_ = buf;
  } else {
    name_ = "RMS_" + label_;
  }
}

void RmsSafetyMargin::observe(double obs, double prediction_for_obs) {
  const double err = obs - prediction_for_obs;
  variance_ += alpha_ * (err * err - variance_);
}

double RmsSafetyMargin::margin() const { return gamma_ * std::sqrt(variance_); }

std::unique_ptr<SafetyMargin> RmsSafetyMargin::make_fresh() const {
  return std::make_unique<RmsSafetyMargin>(gamma_, alpha_, label_);
}

WindowedCiSafetyMargin::WindowedCiSafetyMargin(double gamma,
                                               std::size_t window,
                                               std::string label)
    : label_(std::move(label)), gamma_(gamma), capacity_(window) {
  FDQOS_REQUIRE(gamma > 0.0);
  FDQOS_REQUIRE(window >= 2);
  if (label_.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "WCI(%g,%zu)", gamma_, capacity_);
    name_ = buf;
  } else {
    name_ = "WCI_" + label_;
  }
  ring_.reserve(capacity_);
}

void WindowedCiSafetyMargin::observe(double obs, double /*prediction*/) {
  if (count_ >= capacity_) {
    const double evicted = ring_[count_ % capacity_];
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
    ring_[count_ % capacity_] = obs;
  } else {
    ring_.push_back(obs);
  }
  sum_ += obs;
  sum_sq_ += obs * obs;
  ++count_;
  last_obs_ = obs;
}

double WindowedCiSafetyMargin::margin() const {
  const std::size_t n = std::min(count_, capacity_);
  if (n < 2) return 0.0;
  const double mean = sum_ / static_cast<double>(n);
  const double m2 =
      std::max(0.0, sum_sq_ - sum_ * sum_ / static_cast<double>(n));
  const double sigma = std::sqrt(m2 / static_cast<double>(n - 1));
  const double dev = last_obs_ - mean;
  double inflation = 1.0 + 1.0 / static_cast<double>(n);
  if (m2 > 0.0) inflation += dev * dev / m2;
  return gamma_ * sigma * std::sqrt(inflation);
}

std::unique_ptr<SafetyMargin> WindowedCiSafetyMargin::make_fresh() const {
  return std::make_unique<WindowedCiSafetyMargin>(gamma_, capacity_, label_);
}

MaxSafetyMargin::MaxSafetyMargin(std::unique_ptr<SafetyMargin> first,
                                 std::unique_ptr<SafetyMargin> second)
    : first_(std::move(first)), second_(std::move(second)) {
  FDQOS_REQUIRE(first_ != nullptr && second_ != nullptr);
  name_ = "MAX(" + first_->name() + "," + second_->name() + ")";
}

void MaxSafetyMargin::observe(double obs, double prediction_for_obs) {
  first_->observe(obs, prediction_for_obs);
  second_->observe(obs, prediction_for_obs);
}

double MaxSafetyMargin::margin() const {
  return std::max(first_->margin(), second_->margin());
}

std::unique_ptr<SafetyMargin> MaxSafetyMargin::make_fresh() const {
  return std::make_unique<MaxSafetyMargin>(first_->make_fresh(),
                                           second_->make_fresh());
}

ConstantSafetyMargin::ConstantSafetyMargin(double margin_ms)
    : margin_(margin_ms) {
  FDQOS_REQUIRE(margin_ms >= 0.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "CONST(%gms)", margin_);
  name_ = buf;
}

void ConstantSafetyMargin::observe(double /*obs*/, double /*prediction*/) {}

std::unique_ptr<SafetyMargin> ConstantSafetyMargin::make_fresh() const {
  return std::make_unique<ConstantSafetyMargin>(margin_);
}

}  // namespace fdqos::fd
