#include "fd/suite.hpp"

#include "common/assert.hpp"
#include "forecast/basic_predictors.hpp"

namespace fdqos::fd {

std::vector<std::string> paper_predictor_labels() {
  return {"Arima", "Last", "LPF", "Mean", "WinMean"};
}

std::vector<std::string> paper_margin_labels() {
  return {"CI_low", "CI_med", "CI_high", "JAC_low", "JAC_med", "JAC_high"};
}

forecast::PredictorFactory make_paper_predictor(const std::string& label,
                                                const PaperParams& params) {
  if (label == "Arima") {
    return [order = params.arima_order, refit = params.n_arima] {
      forecast::ArimaPredictorConfig config;
      config.refit_every = refit;
      return std::make_unique<forecast::ArimaPredictor>(order, config);
    };
  }
  if (label == "Last") {
    return [] { return std::make_unique<forecast::LastPredictor>(); };
  }
  if (label == "LPF") {
    return [beta = params.lpf_beta] {
      return std::make_unique<forecast::LpfPredictor>(beta);
    };
  }
  if (label == "Mean") {
    return [] { return std::make_unique<forecast::MeanPredictor>(); };
  }
  if (label == "WinMean") {
    return [window = params.winmean_window] {
      return std::make_unique<forecast::WinMeanPredictor>(window);
    };
  }
  FDQOS_REQUIRE(!"unknown predictor label");
  return {};
}

std::string paper_predictor_key(const std::string& label,
                                const PaperParams& params) {
  if (label == "Arima") {
    return "Arima(" + std::to_string(params.arima_order.p) + "," +
           std::to_string(params.arima_order.d) + "," +
           std::to_string(params.arima_order.q) + ")/" +
           std::to_string(params.n_arima);
  }
  if (label == "Last") return "Last";
  if (label == "LPF") return "LPF(" + std::to_string(params.lpf_beta) + ")";
  if (label == "Mean") return "Mean";
  if (label == "WinMean") {
    return "WinMean(" + std::to_string(params.winmean_window) + ")";
  }
  FDQOS_REQUIRE(!"unknown predictor label");
  return {};
}

SafetyMarginFactory make_paper_margin(const std::string& label,
                                      const PaperParams& params) {
  static const char* kLevels[3] = {"low", "med", "high"};
  for (int i = 0; i < 3; ++i) {
    if (label == std::string("CI_") + kLevels[i]) {
      return [gamma = params.gammas[static_cast<std::size_t>(i)],
              lvl = std::string(kLevels[i])] {
        return std::make_unique<CiSafetyMargin>(gamma, lvl);
      };
    }
    if (label == std::string("JAC_") + kLevels[i]) {
      return [phi = params.phis[static_cast<std::size_t>(i)],
              alpha = params.jacobson_alpha, lvl = std::string(kLevels[i])] {
        return std::make_unique<JacobsonSafetyMargin>(phi, alpha, lvl);
      };
    }
  }
  FDQOS_REQUIRE(!"unknown margin label");
  return {};
}

std::vector<FdSpec> make_paper_suite(const PaperParams& params) {
  std::vector<FdSpec> suite;
  for (const auto& pred : paper_predictor_labels()) {
    for (const auto& margin : paper_margin_labels()) {
      FdSpec spec;
      spec.name = pred + "+" + margin;
      spec.predictor_label = pred;
      spec.margin_label = margin;
      spec.predictor_key = paper_predictor_key(pred, params);
      spec.make_predictor = make_paper_predictor(pred, params);
      spec.make_margin = make_paper_margin(margin, params);
      suite.push_back(std::move(spec));
    }
  }
  FDQOS_ASSERT(suite.size() == 30);
  return suite;
}

std::vector<FdSpec> make_constant_margin_suite(double margin_ms,
                                               const PaperParams& params) {
  std::vector<FdSpec> suite;
  for (const auto& pred : paper_predictor_labels()) {
    FdSpec spec;
    spec.name = pred + "+CONST";
    spec.predictor_label = pred;
    spec.margin_label = "CONST";
    spec.predictor_key = paper_predictor_key(pred, params);
    spec.make_predictor = make_paper_predictor(pred, params);
    spec.make_margin = [margin_ms] {
      return std::make_unique<ConstantSafetyMargin>(margin_ms);
    };
    suite.push_back(std::move(spec));
  }
  return suite;
}

}  // namespace fdqos::fd
