// Safety margins (paper §3.2).
//
// The timeout for cycle i is δ_i = pred_i + sm_i: the predictor forecasts
// the next heartbeat delay, the safety margin absorbs prediction error to
// limit premature (false-positive) suspicion. Two adaptive families from
// the paper, plus the constant margin of Chen et al.'s NFD-E as the
// literature baseline:
//
//   SM_CI(γ)  — confidence-interval style; depends only on the observed
//               delay process (the predictor does not appear):
//               sm = γ·σ̂·sqrt(1 + 1/n + (obs_n − ō)² / Σ(obs_j − ō)²)
//   SM_JAC(φ) — Jacobson RTO style; driven by the predictor's error:
//               v ← v + α·(|obs_n − pred| − v),  sm = φ·v,  α = 1/4
//   SM_CONST  — fixed value derived offline from QoS requirements (NFD-E).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fdqos::fd {

class SafetyMargin {
 public:
  virtual ~SafetyMargin() = default;

  // Called once per received heartbeat, with the observed delay and the
  // prediction that had been issued for it (i.e. the predictor's forecast
  // *before* it saw `obs`). Both in milliseconds.
  virtual void observe(double obs, double prediction_for_obs) = 0;

  // Current margin sm_{k+1} in milliseconds (never negative).
  virtual double margin() const = 0;

  virtual const std::string& name() const = 0;
  virtual std::unique_ptr<SafetyMargin> make_fresh() const = 0;
};

using SafetyMarginFactory = std::function<std::unique_ptr<SafetyMargin>()>;

class CiSafetyMargin final : public SafetyMargin {
 public:
  explicit CiSafetyMargin(double gamma, std::string label = {});

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

  double gamma() const { return gamma_; }

 private:
  std::string name_;
  std::string label_;
  double gamma_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;       // Σ(obs − mean)²
  double last_obs_ = 0.0;
};

class JacobsonSafetyMargin final : public SafetyMargin {
 public:
  explicit JacobsonSafetyMargin(double phi, double alpha = 0.25,
                                std::string label = {});

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override { return phi_ * deviation_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

  double phi() const { return phi_; }
  double alpha() const { return alpha_; }
  // The unscaled smoothed |error| (Jacobson's rttvar analogue).
  double deviation() const { return deviation_; }

 private:
  std::string name_;
  std::string label_;
  double phi_;
  double alpha_;
  double deviation_ = 0.0;
};

// Extension: variance-driven margin — the RMS sibling of SM_JAC. Where
// Jacobson smooths |err|, this smooths err² and takes the root:
//   v ← v + α·(err² − v),   sm = γ·sqrt(v)
// i.e. γ standard deviations of the recent prediction error. Penalizes
// occasional large misses more than SM_JAC (a squared-loss vs absolute-loss
// choice), which matters for predictors like LAST whose errors are small
// except at spikes.
class RmsSafetyMargin final : public SafetyMargin {
 public:
  explicit RmsSafetyMargin(double gamma, double alpha = 0.25,
                           std::string label = {});

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

  double gamma() const { return gamma_; }
  double alpha() const { return alpha_; }
  // Smoothed squared error (the EWMA variance estimate).
  double error_variance() const { return variance_; }

 private:
  std::string name_;
  std::string label_;
  double gamma_;
  double alpha_;
  double variance_ = 0.0;
};

// Extension: SM_CI computed over a sliding window of the last N
// observations instead of the full history. The paper's SM_CI hardens as n
// grows (the 1/n and deviation terms vanish, σ̂ converges on the global
// mixture), so after hours it no longer tracks regime changes; the
// windowed variant trades some estimator noise for adaptivity.
class WindowedCiSafetyMargin final : public SafetyMargin {
 public:
  WindowedCiSafetyMargin(double gamma, std::size_t window,
                         std::string label = {});

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

  double gamma() const { return gamma_; }
  std::size_t window() const { return capacity_; }

 private:
  std::string name_;
  std::string label_;
  double gamma_;
  std::size_t capacity_;
  std::vector<double> ring_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double last_obs_ = 0.0;
};

// Extension beyond the paper (its §6 asks how the CI/JAC trade-off
// generalizes): the pointwise maximum of two margins — e.g. CI ∨ JAC covers
// both network-level variance and predictor error, paying the larger
// timeout of the two at each instant.
class MaxSafetyMargin final : public SafetyMargin {
 public:
  MaxSafetyMargin(std::unique_ptr<SafetyMargin> first,
                  std::unique_ptr<SafetyMargin> second);

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

 private:
  std::string name_;
  std::unique_ptr<SafetyMargin> first_;
  std::unique_ptr<SafetyMargin> second_;
};

class ConstantSafetyMargin final : public SafetyMargin {
 public:
  explicit ConstantSafetyMargin(double margin_ms);

  void observe(double obs, double prediction_for_obs) override;
  double margin() const override { return margin_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<SafetyMargin> make_fresh() const override;

 private:
  std::string name_;
  double margin_;
};

}  // namespace fdqos::fd
