#include "fd/qos_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "obs/instruments.hpp"

namespace fdqos::fd {

QosTracker::QosTracker(TimePoint warmup_end)
    : warmup_end_(warmup_end), up_since_(warmup_end) {}

// EWMA step for the live telemetry estimates (first sample seeds).
static void ewma_update(double& est, double sample) {
  constexpr double kAlpha = 0.2;
  est = std::isnan(est) ? sample : kAlpha * sample + (1.0 - kAlpha) * est;
}

// Contribution of the suspicion interval [start, end] to wrong-suspicion
// time: only the part after the warmup window counts, never negative.
static Duration clipped_span(TimePoint start, TimePoint end,
                             TimePoint warmup_end) {
  const TimePoint from = std::max(start, warmup_end);
  if (end <= from) return Duration::zero();
  return end - from;
}

void QosTracker::process_crashed(TimePoint t) {
  FDQOS_REQUIRE(up_);
  up_ = false;
  ++crashes_;
  if (t > up_since_) observed_up_ += t - up_since_;
  crash_time_ = t;
  // T_MR measures the gap between *consecutive* mistakes, which is only
  // meaningful within one up-interval of the monitored process. A crash
  // ends the interval, so the next mistake after the restore starts a
  // fresh sequence rather than pairing with a pre-crash mistake (which
  // would fold the whole down period into the recurrence gap and inflate
  // T_MR — and through it P_A). See docs/qos_accounting.md.
  last_mistake_start_.reset();

  if (suspecting_) {
    // The open mistake ends here; the detector is instantly "detecting".
    if (mistake_start_) {
      if (recordable(*mistake_start_)) {
        const double tm_ms = (t - *mistake_start_).to_millis_double();
        t_m_.add(tm_ms);
        ewma_update(recent_tm_ms_, tm_ms);
      }
      wrong_suspicion_ += clipped_span(*mistake_start_, t, warmup_end_);
      mistake_start_.reset();
    }
    active_down_suspect_start_ = t;  // T_D = 0 unless later un-suspected
  } else {
    active_down_suspect_start_.reset();
  }
}

void QosTracker::process_restored(TimePoint t) {
  FDQOS_REQUIRE(!up_);
  up_ = true;
  up_since_ = std::max(t, warmup_end_);

  FDQOS_ASSERT(crash_time_.has_value());
  if (active_down_suspect_start_) {
    ++detections_;
    if (obs::enabled()) obs::instruments().qos_detections_total.inc();
    if (recordable(t)) {
      const double td_ms =
          (*active_down_suspect_start_ - *crash_time_).to_millis_double();
      t_d_.add(td_ms);
      ewma_update(recent_td_ms_, td_ms);
    }
  } else {
    ++missed_;
  }
  crash_time_.reset();
  active_down_suspect_start_.reset();
  // If the detector is still suspecting, that residual belongs to the
  // detection; suspect_ended while up with no open mistake is a no-op.
}

void QosTracker::suspect_started(TimePoint t) {
  FDQOS_REQUIRE(!suspecting_);
  suspecting_ = true;
  if (up_) {
    mistake_start_ = t;
    if (last_mistake_start_ && recordable(t) && recordable(*last_mistake_start_)) {
      t_mr_.add((t - *last_mistake_start_).to_millis_double());
    }
    last_mistake_start_ = t;
  } else {
    // (Re-)start of suspicion while down: the latest start is the one that
    // turns out permanent.
    active_down_suspect_start_ = t;
  }
}

void QosTracker::suspect_ended(TimePoint t) {
  FDQOS_REQUIRE(suspecting_);
  suspecting_ = false;
  if (up_) {
    if (mistake_start_) {
      if (recordable(*mistake_start_)) {
        const double tm_ms = (t - *mistake_start_).to_millis_double();
        t_m_.add(tm_ms);
        ewma_update(recent_tm_ms_, tm_ms);
        if (obs::enabled()) obs::instruments().qos_mistakes_total.inc();
      }
      wrong_suspicion_ += clipped_span(*mistake_start_, t, warmup_end_);
      mistake_start_.reset();
    }
    // else: post-restore detection tail ending — not a mistake.
  } else {
    // An in-flight heartbeat (sent before the crash) un-suspected the
    // detector during the down period: the previous start was not permanent.
    active_down_suspect_start_.reset();
  }
}

void QosTracker::finalize(TimePoint end_time) {
  if (up_) {
    if (end_time > up_since_) observed_up_ += end_time - up_since_;
    if (mistake_start_ && suspecting_) {
      // Censored mistake: counts toward availability, not toward T_M.
      wrong_suspicion_ += clipped_span(*mistake_start_, end_time, warmup_end_);
    }
  }
}

QosMetrics QosTracker::metrics() const {
  QosMetrics m;
  m.detection_time_ms = t_d_.summary();
  m.mistake_duration_ms = t_m_.summary();
  m.mistake_recurrence_ms = t_mr_.summary();
  m.crashes_observed = crashes_;
  m.detections = detections_;
  m.missed_detections = missed_;
  m.mistakes = t_m_.count();

  if (observed_up_ > Duration::zero()) {
    m.availability = 1.0 - wrong_suspicion_.to_seconds_double() /
                               observed_up_.to_seconds_double();
  }
  if (t_mr_.count() > 0 && t_mr_.mean() > 0.0) {
    m.query_accuracy =
        std::max(0.0, (t_mr_.mean() - t_m_.mean()) / t_mr_.mean());
  } else {
    // Too few mistakes to estimate a recurrence interval — fall back to the
    // availability view of P_A.
    m.query_accuracy = m.availability;
  }
  return m;
}

}  // namespace fdqos::fd
