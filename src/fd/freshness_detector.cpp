#include "fd/freshness_detector.hpp"

#include "common/assert.hpp"

namespace fdqos::fd {

namespace {

DetectorBank::Config bank_config(const FreshnessDetector::Config& config) {
  DetectorBank::Config out;
  out.eta = config.eta;
  out.monitored = config.monitored;
  out.epoch = config.epoch;
  out.cold_start_timeout = config.cold_start_timeout;
  out.name = config.name.empty() ? "detector" : config.name;
  return out;
}

}  // namespace

FreshnessDetector::FreshnessDetector(
    sim::Simulator& simulator, Config config,
    std::unique_ptr<forecast::Predictor> predictor,
    std::unique_ptr<SafetyMargin> margin)
    : DetectorBank(simulator, bank_config(config)) {
  FDQOS_REQUIRE(predictor != nullptr);
  FDQOS_REQUIRE(margin != nullptr);
  const std::size_t group = add_group(std::move(predictor));
  add_lane(std::move(config.name), group, std::move(margin));
}

}  // namespace fdqos::fd
