#include "fd/freshness_detector.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/instruments.hpp"

namespace fdqos::fd {

FreshnessDetector::FreshnessDetector(
    sim::Simulator& simulator, Config config,
    std::unique_ptr<forecast::Predictor> predictor,
    std::unique_ptr<SafetyMargin> margin)
    : simulator_(simulator),
      config_(std::move(config)),
      predictor_(std::move(predictor)),
      margin_(std::move(margin)) {
  FDQOS_REQUIRE(config_.eta > Duration::zero());
  FDQOS_REQUIRE(predictor_ != nullptr);
  FDQOS_REQUIRE(margin_ != nullptr);
  if (config_.name.empty()) {
    config_.name = predictor_->name() + "+" + margin_->name();
  }
}

double FreshnessDetector::current_delta_ms() const {
  if (observations_ == 0) return config_.cold_start_timeout.to_millis_double();
  const double delta = predictor_->predict() + margin_->margin();
  // A NaN/Inf forecast (a diverged estimator under adversarial delays)
  // would silently corrupt every subsequent τ — fail fast instead; the
  // chaos invariant harness leans on this to catch estimator divergence.
  FDQOS_ASSERT(std::isfinite(delta));
  // A (pathological) negative forecast would place τ before σ; clamp — a
  // heartbeat cannot arrive before it is sent.
  return delta > 0.0 ? delta : 0.0;
}

void FreshnessDetector::start() {
  // Cycle 0 begins at the epoch: compute τ_1 and schedule cycle 1.
  begin_cycle(0);
}

void FreshnessDetector::begin_cycle(std::int64_t k) {
  // At the beginning of cycle k, compute τ_{k+1} = σ_{k+1} + δ_{k+1} from
  // current estimator state and arm the freshness check.
  const std::int64_t next = k + 1;
  const TimePoint sigma_next = config_.epoch + config_.eta * next;
  const TimePoint tau_next =
      sigma_next + Duration::from_millis_double(current_delta_ms());
  // The check runs one tick *after* τ: a heartbeat arriving exactly at the
  // freshness point still counts as fresh (the interval [τ_i, τ_{i+1}] is
  // inspected only once both endpoints' arrivals have had their chance).
  simulator_.schedule_at(tau_next + Duration::nanos(1),
                         [this, next] { freshness_reached(next); });

  // The next cycle begins at σ_{k+1}.
  simulator_.schedule_at(sigma_next, [this, next] { begin_cycle(next); });
}

void FreshnessDetector::freshness_reached(std::int64_t index) {
  // τ_index has passed: the freshness window is now at least [τ_index, ...).
  if (index > freshness_index_) freshness_index_ = index;
  if (obs::enabled()) obs::instruments().fd_freshness_checks_total.inc();
  update_suspicion();
}

void FreshnessDetector::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kHeartbeat || msg.from != config_.monitored) {
    deliver_up(msg);
    return;
  }
  const TimePoint sigma = config_.epoch + config_.eta * msg.seq;
  double obs_ms = (simulator_.now() - sigma).to_millis_double();
  // On a real deployment residual clock skew can make a delay appear
  // negative; clamp (the paper's NTP assumption makes this ≈ 0).
  if (obs_ms < 0.0) obs_ms = 0.0;

  // The margin sees the error of the forecast that was current for this
  // observation, so feed it before the predictor updates.
  margin_->observe(obs_ms, predictor_->predict());
  predictor_->observe(obs_ms);
  ++observations_;

  if (msg.seq > max_seq_) max_seq_ = msg.seq;
  update_suspicion();
}

void FreshnessDetector::update_suspicion() {
  // Trust at time t ∈ [τ_i, τ_{i+1}) iff some m_k with k ≥ i was received.
  const bool should_suspect = max_seq_ < freshness_index_;
  if (should_suspect == suspecting_) return;
  suspecting_ = should_suspect;
  if (obs::enabled()) {
    auto& m = obs::instruments();
    (suspecting_ ? m.fd_transitions_to_suspect : m.fd_transitions_to_trust)
        .inc();
    FDQOS_LOG_TRACE("%s -> %s at %.3f s (delta=%.2f ms)",
                    config_.name.c_str(), suspecting_ ? "suspect" : "trust",
                    simulator_.now().to_seconds_double(), current_delta_ms());
  }
  if (observer_) observer_(simulator_.now(), suspecting_);
}

}  // namespace fdqos::fd
