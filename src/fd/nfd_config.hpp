// NFD-E-style configuration from QoS requirements (Chen, Toueg, Aguilera,
// DSN 2000 — the paper's reference [5] and the constant-margin baseline the
// modular detector extends).
//
// Given application requirements
//   T_D^U   — upper bound on detection time,
//   T_MR^L  — lower bound on mean mistake recurrence,
//   T_M^U   — upper bound on mean mistake duration,
// and a probabilistic characterization of the link (loss probability p_L,
// delay mean E[D] and variance V[D], all in ms), compute the heartbeat
// period η and the constant freshness shift α such that the NFD-E detector
// (MEAN-style expected arrival + constant margin) meets the requirements:
//
//   detection:   η + α ≤ T_D^U                     (freshness-point bound)
//   accuracy:    p_miss(α) ≤ η / T_MR^L            (mistake rate bound)
//   duration:    η + E[D] ≤ α + T_M^U              (mistake ends at next
//                                                    arrival)
// where the per-heartbeat miss probability is bounded via loss plus the
// one-sided Chebyshev (Cantelli) inequality:
//
//   p_miss(α) = p_L + (1 − p_L) · V[D] / (V[D] + (α − E[D])²),  α > E[D].
//
// Among feasible (η, α) pairs the configurator returns the one with the
// largest η — the fewest messages for the required QoS.
#pragma once

#include <optional>

#include "common/time.hpp"
#include "fd/suite.hpp"

namespace fdqos::fd {

struct QosRequirements {
  Duration max_detection_time;       // T_D^U
  Duration min_mistake_recurrence;   // T_MR^L
  Duration max_mistake_duration;     // T_M^U
};

struct LinkCharacterization {
  double loss_probability = 0.0;  // p_L
  double delay_mean_ms = 0.0;     // E[D]
  double delay_var_ms2 = 0.0;     // V[D]
};

struct NfdEConfiguration {
  Duration eta;            // heartbeat period
  Duration alpha;          // constant freshness shift (τ_i = σ_i + α)
  double margin_ms = 0.0;  // α − E[D]: the constant safety margin beyond
                           // the MEAN predictor
  double miss_probability = 0.0;  // bounded per-heartbeat miss probability
  // Guaranteed bounds implied by (η, α):
  Duration detection_bound;            // η + α ≥ achieved T_D
  Duration mistake_recurrence_bound;   // η / p_miss ≤ achieved E[T_MR]
};

// Bounded per-heartbeat miss probability for shift alpha (ms).
double nfd_miss_probability(const LinkCharacterization& link, double alpha_ms);

// Returns nullopt when no (η, α) pair can meet the requirements on this
// link (e.g. T_MR^L · p_L > T_D^U: losses alone force too many mistakes).
std::optional<NfdEConfiguration> configure_nfd_e(
    const QosRequirements& requirements, const LinkCharacterization& link);

// FdSpec for the configured detector: MEAN predictor + constant margin
// α − E[D], runnable in the QoS experiment next to the paper suite.
FdSpec make_nfd_e_spec(const NfdEConfiguration& config);

}  // namespace fdqos::fd
