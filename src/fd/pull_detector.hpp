// PullDetector — pull-style (ping/pong) crash failure detector (paper §2.2).
//
// The monitor sends ping r_k at σ_k = k·η and expects pong p_k back; the
// observed round-trip times drive the same predictor + safety-margin
// timeout machinery as the push-style FreshnessDetector:
//
//   τ_{k+1} = σ_{k+1} + δ_{k+1},   δ = rtt_pred + sm
//
// and at t ∈ [τ_i, τ_{i+1}) the monitor trusts q iff some pong p_k with
// k ≥ i has arrived. Pull costs two messages per cycle where push costs
// one — the reason the paper calls push "generally considered better" for
// continuous monitoring — but needs no clock synchronization at all: RTTs
// are measured against the monitor's own clock.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fd/safety_margin.hpp"
#include "forecast/predictor.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::fd {

class PullDetector final : public runtime::Layer {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);  // ping period
    net::NodeId self = 1;                 // monitor node (ping source)
    net::NodeId monitored = 0;            // ping target
    TimePoint epoch = TimePoint::origin();
    Duration cold_start_timeout = Duration::seconds(1);
    std::int64_t max_cycles = 0;  // 0 = unbounded pinging
    std::string name;
  };

  using SuspectObserver = std::function<void(TimePoint, bool)>;

  PullDetector(sim::Simulator& simulator, Config config,
               std::unique_ptr<forecast::Predictor> rtt_predictor,
               std::unique_ptr<SafetyMargin> margin);

  void set_observer(SuspectObserver observer) { observer_ = std::move(observer); }

  void start() override;
  void handle_up(const net::Message& msg) override;

  const std::string& name() const { return config_.name; }
  bool suspecting() const { return suspecting_; }
  std::int64_t max_pong_seq() const { return max_pong_; }
  std::int64_t pings_sent() const { return pings_sent_; }
  std::size_t observations() const { return observations_; }
  // Current timeout δ = rtt_pred + sm, in milliseconds.
  double current_delta_ms() const;

  const forecast::Predictor& predictor() const { return *predictor_; }
  const SafetyMargin& margin() const { return *margin_; }

 private:
  void begin_cycle(std::int64_t k);
  void send_ping(std::int64_t k);
  void freshness_reached(std::int64_t index);
  void update_suspicion();

  sim::Simulator& simulator_;
  Config config_;
  std::unique_ptr<forecast::Predictor> predictor_;
  std::unique_ptr<SafetyMargin> margin_;
  SuspectObserver observer_;

  std::int64_t max_pong_ = 0;
  std::int64_t freshness_index_ = 0;
  std::int64_t pings_sent_ = 0;
  bool suspecting_ = false;
  std::size_t observations_ = 0;
};

}  // namespace fdqos::fd
