#include "fd/detector_bank.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/instruments.hpp"

namespace fdqos::fd {

void DetectorBank::Counters::add(const Counters& other) {
  predictor_updates += other.predictor_updates;
  lane_updates += other.lane_updates;
  coalesced_timers += other.coalesced_timers;
  timer_events += other.timer_events;
  dispatch_errors += other.dispatch_errors;
}

DetectorBank::DetectorBank(sim::Simulator& simulator, Config config)
    : simulator_(simulator), config_(std::move(config)) {
  FDQOS_REQUIRE(config_.eta > Duration::zero());
}

std::size_t DetectorBank::add_group(
    std::unique_ptr<forecast::Predictor> predictor) {
  FDQOS_REQUIRE(!started_);
  FDQOS_REQUIRE(predictor != nullptr);
  groups_.push_back(
      std::make_unique<forecast::SharedPredictor>(std::move(predictor)));
  return groups_.size() - 1;
}

std::size_t DetectorBank::add_lane(std::string name, std::size_t group,
                                   std::unique_ptr<SafetyMargin> margin) {
  FDQOS_REQUIRE(!started_);
  FDQOS_REQUIRE(group < groups_.size());
  FDQOS_REQUIRE(margin != nullptr);
  if (name.empty()) {
    name = groups_[group]->name() + "+" + margin->name();
  }
  lane_names_.push_back(std::move(name));
  lane_group_.push_back(static_cast<std::uint32_t>(group));
  margins_.push_back(std::move(margin));
  freshness_index_.push_back(0);
  suspecting_.push_back(0);
  armed_delta_ms_.push_back(config_.cold_start_timeout.to_millis_double());
  return margins_.size() - 1;
}

const std::string& DetectorBank::lane_name(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  return lane_names_[lane];
}

bool DetectorBank::lane_suspecting(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  return suspecting_[lane] != 0;
}

std::int64_t DetectorBank::lane_freshness_index(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  return freshness_index_[lane];
}

double DetectorBank::lane_delta_ms(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  if (observations_ == 0) return config_.cold_start_timeout.to_millis_double();
  const double delta =
      groups_[lane_group_[lane]]->predict() + margins_[lane]->margin();
  // A NaN/Inf forecast (a diverged estimator under adversarial delays)
  // would silently corrupt every subsequent τ — fail fast instead; the
  // chaos invariant harness leans on this to catch estimator divergence.
  FDQOS_ASSERT(std::isfinite(delta));
  // A (pathological) negative forecast would place τ before σ; clamp — a
  // heartbeat cannot arrive before it is sent.
  return delta > 0.0 ? delta : 0.0;
}

std::size_t DetectorBank::lane_group(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  return lane_group_[lane];
}

const SafetyMargin& DetectorBank::lane_margin(std::size_t lane) const {
  FDQOS_REQUIRE(lane < width());
  return *margins_[lane];
}

const forecast::Predictor& DetectorBank::group_predictor(
    std::size_t group) const {
  FDQOS_REQUIRE(group < groups_.size());
  return groups_[group]->underlying();
}

const forecast::SharedPredictor& DetectorBank::shared_predictor(
    std::size_t group) const {
  FDQOS_REQUIRE(group < groups_.size());
  return *groups_[group];
}

std::size_t DetectorBank::suspecting_count() const {
  std::size_t n = 0;
  for (const std::uint8_t s : suspecting_) n += s;
  return n;
}

void DetectorBank::set_timer_host(TimerHost* host, std::size_t member) {
  FDQOS_REQUIRE(!started_);
  FDQOS_REQUIRE(host != nullptr);
  host_ = host;
  host_member_ = member;
}

void DetectorBank::reserve_lanes(std::size_t lanes) {
  lane_names_.reserve(lanes);
  lane_group_.reserve(lanes);
  margins_.reserve(lanes);
  freshness_index_.reserve(lanes);
  suspecting_.reserve(lanes);
  armed_delta_ms_.reserve(lanes);
}

void DetectorBank::start() {
  FDQOS_REQUIRE(width() > 0);
  started_ = true;
  // Cycle 0 begins at the epoch: compute every lane's τ_1 and arm the
  // shared timer, exactly as each legacy detector would for itself.
  begin_cycle(0);
}

void DetectorBank::begin_cycle(std::int64_t k) {
  // At the beginning of cycle k, compute τ_{k+1} = σ_{k+1} + δ_{k+1} for
  // every lane from current estimator state. The shared predictor's
  // forecast is memoized, so a group of N lanes pays one evaluation.
  const std::int64_t next = k + 1;
  const TimePoint sigma_next = config_.epoch + config_.eta * next;
  // Legacy runs one cycle-begin event per detector; the bank runs one for
  // the whole suite.
  counters_.coalesced_timers += width() - 1;
  for (std::size_t lane = 0; lane < width(); ++lane) {
    const double delta = lane_delta_ms(lane);
    armed_delta_ms_[lane] = delta;
    const TimePoint tau_next =
        sigma_next + Duration::from_millis_double(delta);
    // The check runs one tick *after* τ: a heartbeat arriving exactly at
    // the freshness point still counts as fresh (the interval [τ_i,
    // τ_{i+1}] is inspected only once both endpoints' arrivals have had
    // their chance).
    push_expiry(tau_next + Duration::nanos(1), next, lane);
  }
  arm_timer();

  // The next cycle begins at σ_{k+1}. A hosted bank schedules nothing: the
  // host's shared shard tick calls host_begin_cycle(next) at σ_{k+1}.
  if (host_ == nullptr) {
    simulator_.schedule_at(sigma_next, [this, next] { begin_cycle(next); });
  }
}

void DetectorBank::host_begin_cycle(std::int64_t k) {
  FDQOS_REQUIRE(host_ != nullptr);
  begin_cycle(k);
}

void DetectorBank::push_expiry(TimePoint due, std::int64_t index,
                               std::size_t lane) {
  expiries_.push_back(Expiry{due, next_expiry_seq_++, index,
                             static_cast<std::uint32_t>(lane)});
  std::push_heap(expiries_.begin(), expiries_.end(), ExpiryAfter{});
}

TimePoint DetectorBank::earliest_expiry() const {
  return expiries_.empty() ? TimePoint::max() : expiries_.front().due;
}

void DetectorBank::arm_timer() {
  if (expiries_.empty()) return;
  const TimePoint front = expiries_.front().due;
  if (host_ != nullptr) {
    // Hosted: report instead of arming. Same undercut rule — the host
    // already holds an entry at host_reported_, so only an earlier front
    // needs a new one.
    if (host_reported_ <= front) return;
    host_reported_ = front;
    host_->member_deadline_changed(host_member_, front);
    return;
  }
  // Under delay spikes a later cycle's τ can undercut an already-armed
  // earlier one; re-arm at the new front (O(1) tombstone cancel).
  if (armed_.time() <= front) return;
  armed_.cancel();
  armed_ = simulator_.schedule_at(front, [this] { timer_fired(); });
}

void DetectorBank::timer_fired() {
  ++counters_.timer_events;
  pop_due(simulator_.now());
  arm_timer();
}

void DetectorBank::host_timer_check() {
  // A host-queue entry for this member came due. It may be stale (the solo
  // engine would have tombstone-cancelled it): only count a fire when
  // something actually pops. Either way the consumed entry is replaced by
  // re-reporting the current front, so the next real deadline still fires.
  const TimePoint now = simulator_.now();
  if (!expiries_.empty() && expiries_.front().due <= now) {
    ++counters_.timer_events;
    pop_due(now);
  }
  host_reported_ = TimePoint::max();
  arm_timer();
}

void DetectorBank::pop_due(TimePoint now) {
  bool first = true;
  while (!expiries_.empty() && expiries_.front().due <= now) {
    std::pop_heap(expiries_.begin(), expiries_.end(), ExpiryAfter{});
    const Expiry e = expiries_.back();
    expiries_.pop_back();
    if (!first) ++counters_.coalesced_timers;
    first = false;
    freshness_reached(e.lane, e.index);
  }
}

void DetectorBank::freshness_reached(std::size_t lane, std::int64_t index) {
  // τ_index has passed: the lane's freshness window is now at least
  // [τ_index, ...).
  if (index > freshness_index_[lane]) freshness_index_[lane] = index;
  if (obs::enabled()) obs::instruments().fd_freshness_checks_total.inc();
  update_suspicion(lane);
}

void DetectorBank::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kHeartbeat ||
      msg.from != config_.monitored) {
    deliver_up(msg);
    return;
  }
  observe_heartbeat(msg.seq);
}

void DetectorBank::observe_heartbeat(std::int64_t seq) {
  const TimePoint sigma = config_.epoch + config_.eta * seq;
  double obs_ms = (simulator_.now() - sigma).to_millis_double();
  // On a real deployment residual clock skew can make a delay appear
  // negative; clamp (the paper's NTP assumption makes this ≈ 0).
  if (obs_ms < 0.0) obs_ms = 0.0;

  // Every margin sees the error of the forecast that was current for this
  // observation, so all lanes are fed before any shared predictor updates;
  // within one group the memoized predict() costs one real evaluation. A
  // lane that throws is contained (same contract as the mux fan-out).
  for (std::size_t lane = 0; lane < width(); ++lane) {
    const bool ok = runtime::invoke_isolated(lane_names_[lane].c_str(), [&] {
      margins_[lane]->observe(obs_ms, groups_[lane_group_[lane]]->predict());
    });
    if (!ok) ++counters_.dispatch_errors;
  }
  for (auto& group : groups_) group->observe(obs_ms);
  counters_.predictor_updates += groups_.size();
  counters_.lane_updates += width();
  ++observations_;

  if (seq > max_seq_) max_seq_ = seq;
  for (std::size_t lane = 0; lane < width(); ++lane) update_suspicion(lane);
}

void DetectorBank::update_suspicion(std::size_t lane) {
  // Trust at time t ∈ [τ_i, τ_{i+1}) iff some m_k with k ≥ i was received.
  const bool should_suspect = max_seq_ < freshness_index_[lane];
  if (should_suspect == (suspecting_[lane] != 0)) return;
  suspecting_[lane] = should_suspect ? 1 : 0;
  if (obs::enabled()) {
    auto& m = obs::instruments();
    (should_suspect ? m.fd_transitions_to_suspect : m.fd_transitions_to_trust)
        .inc();
    FDQOS_LOG_TRACE("%s -> %s at %.3f s (delta=%.2f ms)",
                    lane_names_[lane].c_str(),
                    should_suspect ? "suspect" : "trust",
                    simulator_.now().to_seconds_double(), lane_delta_ms(lane));
  }
  if (observer_) {
    const bool ok = runtime::invoke_isolated(lane_names_[lane].c_str(), [&] {
      observer_(lane, simulator_.now(), should_suspect);
    });
    if (!ok) ++counters_.dispatch_errors;
  }
}

}  // namespace fdqos::fd
