#include "consensus/cluster.hpp"

#include "common/assert.hpp"

namespace fdqos::consensus {

ConsensusCluster::ConsensusCluster(Config config,
                                   const LinkFactory& link_factory)
    : config_(std::move(config)) {
  FDQOS_REQUIRE(config_.nodes >= 3);
  FDQOS_REQUIRE(link_factory != nullptr);

  transport_ =
      std::make_unique<net::SimTransport>(simulator_, Rng(config_.seed));
  for (int a = 0; a < config_.nodes; ++a) {
    for (int b = 0; b < config_.nodes; ++b) {
      if (a != b) transport_->set_link(a, b, link_factory(a, b));
    }
  }

  std::vector<net::NodeId> members;
  for (int i = 0; i < config_.nodes; ++i) members.push_back(i);

  nodes_.resize(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    node.process = std::make_unique<runtime::ProcessNode>(*transport_, i);

    auto schedule_it = config_.crash_schedules.find(i);
    node.crash = &node.process->push(std::make_unique<runtime::ScriptedCrashLayer>(
        simulator_,
        schedule_it != config_.crash_schedules.end()
            ? schedule_it->second
            : std::vector<runtime::ScriptedCrashLayer::DownPeriod>{}));

    node.views = std::make_unique<membership::ViewManager>(i, members);
    node.feed = std::make_unique<membership::BankViewFeed>(*node.views);

    for (int peer = 0; peer < config_.nodes; ++peer) {
      if (peer == i) continue;
      runtime::HeartbeaterLayer::Config hb;
      hb.eta = config_.eta;
      hb.self = i;
      hb.monitor = peer;
      auto beater = std::make_unique<runtime::HeartbeaterLayer>(simulator_, hb);
      node.process->attach_unowned(*node.crash, *beater);
      node.heartbeaters.push_back(std::move(beater));

      // One width-1 DetectorBank per peer: the same batched engine the QoS
      // experiment measures, configured as a single (predictor, margin)
      // lane watching this peer's heartbeats.
      fd::DetectorBank::Config bank_config;
      bank_config.eta = config_.eta;
      bank_config.monitored = peer;
      bank_config.cold_start_timeout = config_.cold_start_timeout;
      bank_config.name = "consensus-fd";
      auto bank = std::make_unique<fd::DetectorBank>(simulator_, bank_config);
      const std::size_t group =
          bank->add_group(fd::make_paper_predictor(config_.predictor_label)());
      bank->add_lane(
          config_.predictor_label + "/" + config_.margin_label, group,
          fd::make_paper_margin(config_.margin_label)());
      node.process->attach_unowned(*node.crash, *bank);
      node.detectors.emplace(peer, std::move(bank));
    }

    ConsensusProcess::Config c_config;
    c_config.self = i;
    c_config.members = members;
    c_config.retransmit_interval = config_.retransmit_interval;
    auto* detectors = &node.detectors;
    node.consensus = std::make_unique<ConsensusProcess>(
        simulator_, c_config, [detectors](net::NodeId peer) {
          auto it = detectors->find(peer);
          return it != detectors->end() && it->second->lane_suspecting(0);
        });
    node.process->attach_unowned(*node.crash, *node.consensus);
    Node* node_ptr = &node;
    node.consensus->set_decision_observer(
        [node_ptr](std::int64_t value, TimePoint t, std::uint32_t) {
          node_ptr->decision = value;
          node_ptr->decision_time = t;
        });
    for (auto& [peer, bank] : node.detectors) {
      // The feed routes each bank's transitions into the node's view
      // manager, then chains the consensus ◇S wake-up.
      ConsensusProcess* consensus = node.consensus.get();
      node.feed->attach(*bank, {peer},
                        [consensus](std::size_t, TimePoint, bool) {
                          consensus->on_suspicion_change();
                        });
    }
    node.process->start();
  }
}

void ConsensusCluster::propose_all(TimePoint when,
                                   const std::vector<std::int64_t>& values) {
  FDQOS_REQUIRE(values.size() == nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = &nodes_[i];
    const std::int64_t value = values[i];
    simulator_.schedule_at(when, [node, value] {
      if (!node->crash->crashed()) node->consensus->propose(value);
    });
  }
}

bool ConsensusCluster::run_until_decided(TimePoint deadline) {
  // Step in coarse slices; stop as soon as all up nodes have decided.
  const Duration slice = Duration::millis(100);
  while (simulator_.now() < deadline) {
    const TimePoint next =
        std::min(deadline, simulator_.now() + slice);
    simulator_.run_until(next);
    bool all_decided = true;
    for (const auto& node : nodes_) {
      if (!node.crash->crashed() && !node.decision.has_value()) {
        all_decided = false;
        break;
      }
    }
    if (all_decided) return true;
  }
  for (const auto& node : nodes_) {
    if (!node.crash->crashed() && !node.decision.has_value()) return false;
  }
  return true;
}

bool ConsensusCluster::node_up(int i) const {
  return !nodes_[static_cast<std::size_t>(i)].crash->crashed();
}

std::optional<std::int64_t> ConsensusCluster::decision(int i) const {
  return nodes_[static_cast<std::size_t>(i)].decision;
}

TimePoint ConsensusCluster::decision_time(int i) const {
  return nodes_[static_cast<std::size_t>(i)].decision_time;
}

std::uint32_t ConsensusCluster::rounds_entered(int i) const {
  return nodes_[static_cast<std::size_t>(i)].consensus->rounds_entered();
}

std::uint64_t ConsensusCluster::consensus_messages(int i) const {
  return nodes_[static_cast<std::size_t>(i)].consensus->messages_sent();
}

const membership::View& ConsensusCluster::view(int i) const {
  return nodes_[static_cast<std::size_t>(i)].views->view();
}

std::uint64_t ConsensusCluster::views_installed(int i) const {
  return nodes_[static_cast<std::size_t>(i)].views->views_installed();
}

std::uint64_t ConsensusCluster::coordinator_changes(int i) const {
  return nodes_[static_cast<std::size_t>(i)].views->coordinator_changes();
}

}  // namespace fdqos::consensus
