#include "consensus/messages.hpp"

#include "net/codec.hpp"

namespace fdqos::consensus {
namespace {
constexpr std::uint8_t kPayloadTag = 0xC5;  // distinguishes consensus payloads
}

const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kEstimate: return "estimate";
    case MsgKind::kProposal: return "proposal";
    case MsgKind::kAck: return "ack";
    case MsgKind::kNack: return "nack";
    case MsgKind::kDecide: return "decide";
  }
  return "?";
}

net::Message wrap(const ConsensusMsg& msg, net::NodeId from, net::NodeId to,
                  TimePoint now) {
  net::ByteWriter w;
  w.u8(kPayloadTag);
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u32(msg.instance);
  w.u32(msg.round);
  w.i64(msg.value);
  w.u32(msg.ts);

  net::Message out;
  out.from = from;
  out.to = to;
  out.type = net::MessageType::kUser;
  out.seq = msg.round;
  out.send_time = now;
  out.payload = w.take();
  return out;
}

std::optional<ConsensusMsg> unwrap(const net::Message& msg) {
  if (msg.type != net::MessageType::kUser) return std::nullopt;
  net::ByteReader r(msg.payload);
  const auto tag = r.u8();
  if (!tag || *tag != kPayloadTag) return std::nullopt;
  const auto kind = r.u8();
  const auto instance = r.u32();
  const auto round = r.u32();
  const auto value = r.i64();
  const auto ts = r.u32();
  if (!kind || !instance || !round || !value || !ts || !r.exhausted()) {
    return std::nullopt;
  }
  if (*kind < 1 || *kind > 5) return std::nullopt;
  ConsensusMsg out;
  out.kind = static_cast<MsgKind>(*kind);
  out.instance = *instance;
  out.round = *round;
  out.value = *value;
  out.ts = *ts;
  return out;
}

}  // namespace fdqos::consensus
