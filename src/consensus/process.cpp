#include "consensus/process.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::consensus {

ConsensusProcess::ConsensusProcess(sim::Simulator& simulator, Config config,
                                   SuspicionQuery suspected)
    : simulator_(simulator),
      config_(std::move(config)),
      suspected_(std::move(suspected)) {
  FDQOS_REQUIRE(config_.members.size() >= 3);
  FDQOS_REQUIRE(std::find(config_.members.begin(), config_.members.end(),
                          config_.self) != config_.members.end());
  FDQOS_REQUIRE(suspected_ != nullptr);
  FDQOS_REQUIRE(config_.retransmit_interval > Duration::zero());
}

net::NodeId ConsensusProcess::coordinator_of(std::uint32_t round) const {
  // Rounds start at 1: round 1 -> members[0].
  return config_.members[(round - 1) % config_.members.size()];
}

std::optional<std::int64_t> ConsensusProcess::decision() const {
  if (!decided_) return std::nullopt;
  return decision_;
}

void ConsensusProcess::send(const ConsensusMsg& msg, net::NodeId to) {
  if (to == config_.self) {
    // Loop self-addressed messages straight back up (a process is always a
    // reliable channel to itself).
    net::Message looped = wrap(msg, config_.self, to, simulator_.now());
    handle_up(looped);
    return;
  }
  ++messages_sent_;
  send_down(wrap(msg, config_.self, to, simulator_.now()));
}

void ConsensusProcess::broadcast(const ConsensusMsg& msg) {
  for (net::NodeId member : config_.members) {
    send(msg, member);
  }
}

void ConsensusProcess::propose(std::int64_t value) {
  FDQOS_REQUIRE(!proposed_);
  proposed_ = true;
  estimate_ = value;
  ts_ = 0;
  enter_round(1);
  simulator_.schedule_after(config_.retransmit_interval,
                            [this] { on_retransmit_timer(); });
}

void ConsensusProcess::enter_round(std::uint32_t round) {
  FDQOS_ASSERT(round > round_);
  round_ = round;
  ++rounds_entered_;
  awaiting_proposal_ = true;
  send_estimate();
  // If the coordinator is already suspected, skip the round without waiting
  // for the retransmit tick.
  check_coordinator_suspicion();
}

void ConsensusProcess::send_estimate() {
  ConsensusMsg msg;
  msg.kind = MsgKind::kEstimate;
  msg.instance = config_.instance;
  msg.round = round_;
  msg.value = estimate_;
  msg.ts = ts_;
  send(msg, coordinator_of(round_));
}

void ConsensusProcess::handle_up(const net::Message& raw) {
  const auto msg = unwrap(raw);
  if (!msg || msg->instance != config_.instance) {
    deliver_up(raw);
    return;
  }
  if (!proposed_) return;  // not participating yet; stubborn peers retry

  if (decided_ && msg->kind != MsgKind::kDecide) {
    // Help laggards: anything arriving after our decision is answered with
    // the decision itself.
    ConsensusMsg decide;
    decide.kind = MsgKind::kDecide;
    decide.instance = config_.instance;
    decide.round = round_;
    decide.value = decision_;
    send(decide, raw.from);
    return;
  }

  switch (msg->kind) {
    case MsgKind::kEstimate:
      handle_estimate(*msg, raw.from);
      break;
    case MsgKind::kProposal:
      handle_proposal(*msg, raw.from);
      break;
    case MsgKind::kAck:
      handle_ack(*msg, raw.from);
      break;
    case MsgKind::kNack:
      // A NACK tells the coordinator this round cannot reach unanimity;
      // majority ACKs may still arrive, so nothing to do beyond noting.
      break;
    case MsgKind::kDecide:
      handle_decide(*msg);
      break;
  }
}

void ConsensusProcess::handle_estimate(const ConsensusMsg& msg,
                                       net::NodeId from) {
  if (coordinator_of(msg.round) != config_.self) return;  // misrouted/stale
  CoordRound& state = coord_rounds_[msg.round];
  if (state.proposal_sent) {
    // Duplicate or late estimate: the sender probably lost our proposal —
    // re-send it directly (stubborn channel, receiver-driven).
    ConsensusMsg proposal;
    proposal.kind = MsgKind::kProposal;
    proposal.instance = config_.instance;
    proposal.round = msg.round;
    proposal.value = state.proposal_value;
    send(proposal, from);
    return;
  }
  const bool inserted = state.estimate_senders.insert(from).second;
  if (inserted &&
      (state.estimate_senders.size() == 1 || msg.ts > state.best_ts)) {
    // Adopt the estimate with the highest timestamp (first one initializes).
    state.best_ts = msg.ts;
    state.best_value = msg.value;
  }
  // A round from the future fast-forwards us (others have moved on).
  if (msg.round > round_) {
    enter_round(msg.round);
    if (decided_) return;
  }
  maybe_propose(coord_rounds_[msg.round], msg.round);
}

void ConsensusProcess::maybe_propose(CoordRound& state, std::uint32_t round) {
  if (state.proposal_sent || state.estimate_senders.size() < majority()) {
    return;
  }
  state.proposal_sent = true;
  state.proposal_value = state.best_value;
  ConsensusMsg proposal;
  proposal.kind = MsgKind::kProposal;
  proposal.instance = config_.instance;
  proposal.round = round;
  proposal.value = state.proposal_value;
  broadcast(proposal);  // includes self: we adopt and ACK via handle_proposal
}

void ConsensusProcess::handle_proposal(const ConsensusMsg& msg,
                                       net::NodeId from) {
  if (from != coordinator_of(msg.round)) return;  // not from the coordinator
  if (msg.round > round_) {
    enter_round(msg.round);
    if (decided_ || round_ != msg.round) return;
  }
  if (msg.round < round_ || !awaiting_proposal_) return;  // stale / done

  // Adopt and ACK.
  estimate_ = msg.value;
  ts_ = msg.round;
  awaiting_proposal_ = false;
  ConsensusMsg ack;
  ack.kind = MsgKind::kAck;
  ack.instance = config_.instance;
  ack.round = msg.round;
  ack.value = msg.value;
  send(ack, coordinator_of(msg.round));
  if (!decided_) enter_round(round_ + 1);
}

void ConsensusProcess::handle_ack(const ConsensusMsg& msg, net::NodeId from) {
  if (coordinator_of(msg.round) != config_.self) return;
  CoordRound& state = coord_rounds_[msg.round];
  if (!state.proposal_sent) return;  // cannot ACK what was never proposed
  state.acks.insert(from);
  if (state.acks.size() >= majority() && !decided_) {
    decide(state.proposal_value);
  }
}

void ConsensusProcess::handle_decide(const ConsensusMsg& msg) {
  if (decided_) return;
  decide(msg.value);
}

void ConsensusProcess::decide(std::int64_t value) {
  FDQOS_ASSERT(!decided_);
  decided_ = true;
  decision_ = value;
  decide_floods_left_ = config_.decide_floods;
  awaiting_proposal_ = false;
  ConsensusMsg msg;
  msg.kind = MsgKind::kDecide;
  msg.instance = config_.instance;
  msg.round = round_;
  msg.value = value;
  broadcast(msg);
  if (observer_) observer_(value, simulator_.now(), rounds_entered_);
}

void ConsensusProcess::check_coordinator_suspicion() {
  if (decided_ || !awaiting_proposal_) return;
  const net::NodeId coord = coordinator_of(round_);
  if (coord == config_.self) return;  // we never suspect ourselves
  if (!suspected_(coord)) return;
  // Phase 3 exit by suspicion: NACK and move on.
  ConsensusMsg nack;
  nack.kind = MsgKind::kNack;
  nack.instance = config_.instance;
  nack.round = round_;
  send(nack, coord);
  awaiting_proposal_ = false;
  enter_round(round_ + 1);
}

void ConsensusProcess::on_suspicion_change() {
  if (proposed_) check_coordinator_suspicion();
}

void ConsensusProcess::on_retransmit_timer() {
  if (decided_) {
    if (decide_floods_left_ > 0) {
      --decide_floods_left_;
      ConsensusMsg msg;
      msg.kind = MsgKind::kDecide;
      msg.instance = config_.instance;
      msg.round = round_;
      msg.value = decision_;
      broadcast(msg);
      simulator_.schedule_after(config_.retransmit_interval,
                                [this] { on_retransmit_timer(); });
    }
    return;
  }

  check_coordinator_suspicion();
  if (!decided_) {
    // Stubbornly re-send the current round's estimate; a coordinator that
    // already proposed will answer with the proposal (see handle_estimate).
    send_estimate();
    // Re-broadcast unfinished proposals for rounds we coordinate (bounded:
    // older rounds than round_ - 2n are dead).
    const std::uint32_t horizon =
        round_ > 2 * config_.members.size()
            ? round_ - 2 * static_cast<std::uint32_t>(config_.members.size())
            : 0;
    for (auto& [round, state] : coord_rounds_) {
      if (round < horizon || !state.proposal_sent) continue;
      if (state.acks.size() >= majority()) continue;
      ConsensusMsg proposal;
      proposal.kind = MsgKind::kProposal;
      proposal.instance = config_.instance;
      proposal.round = round;
      proposal.value = state.proposal_value;
      broadcast(proposal);
    }
  }
  simulator_.schedule_after(config_.retransmit_interval,
                            [this] { on_retransmit_timer(); });
}

}  // namespace fdqos::consensus
