// Wire messages for the Chandra–Toueg ◇S consensus protocol.
//
// Consensus messages ride inside net::Message payloads (type kUser), so the
// protocol runs over the same transports — and through the same crash
// injectors — as the failure detectors that drive it.
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"

namespace fdqos::consensus {

enum class MsgKind : std::uint8_t {
  kEstimate = 1,  // participant -> coordinator: (estimate, ts)
  kProposal = 2,  // coordinator -> all: adopted estimate for the round
  kAck = 3,       // participant -> coordinator: proposal adopted
  kNack = 4,      // participant -> coordinator: coordinator suspected
  kDecide = 5,    // decided value, flooded
};

const char* msg_kind_name(MsgKind kind);

struct ConsensusMsg {
  MsgKind kind = MsgKind::kEstimate;
  std::uint32_t instance = 0;  // consensus instance id
  std::uint32_t round = 0;
  std::int64_t value = 0;      // estimate / proposal / decision
  std::uint32_t ts = 0;        // round in which `value` was last adopted

  bool operator==(const ConsensusMsg&) const = default;
};

// Wraps a ConsensusMsg into a transport message from -> to.
net::Message wrap(const ConsensusMsg& msg, net::NodeId from, net::NodeId to,
                  TimePoint now);

// Extracts a ConsensusMsg; nullopt if the message is not a (valid)
// consensus payload.
std::optional<ConsensusMsg> unwrap(const net::Message& msg);

}  // namespace fdqos::consensus
