// ConsensusCluster — an N-node consensus deployment in a box.
//
// Wires, per node: scripted crash injection, per-peer heartbeaters, one
// width-1 fd::DetectorBank per peer (the ◇S oracle — the same batched
// engine the QoS experiment runs, so consensus consumes exactly the
// detector semantics the paper measures), a membership::ViewManager fed by
// those banks' suspect transitions, and a ConsensusProcess, all over one
// simulated transport. Used by the consensus QoS experiment
// (bench_consensus_qos) to relate detector QoS to consensus QoS, the
// relation studied by Coccoli et al. (paper reference [6]).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/process.hpp"
#include "fd/detector_bank.hpp"
#include "fd/suite.hpp"
#include "membership/bank_feed.hpp"
#include "membership/view_manager.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/process_node.hpp"
#include "runtime/scripted_crash.hpp"
#include "sim/simulator.hpp"

namespace fdqos::consensus {

class ConsensusCluster {
 public:
  struct Config {
    int nodes = 3;
    Duration eta = Duration::millis(200);  // heartbeat period
    Duration cold_start_timeout = Duration::millis(500);
    Duration retransmit_interval = Duration::millis(300);
    // Failure-detector configuration (paper-suite labels).
    std::string predictor_label = "Last";
    std::string margin_label = "JAC_med";
    // Per-node down periods (deterministic fault injection).
    std::map<int, std::vector<runtime::ScriptedCrashLayer::DownPeriod>>
        crash_schedules;
    std::uint64_t seed = 1;
  };

  // link_factory(from, to) builds each directional link.
  using LinkFactory =
      std::function<net::SimTransport::LinkConfig(net::NodeId, net::NodeId)>;

  ConsensusCluster(Config config, const LinkFactory& link_factory);

  sim::Simulator& simulator() { return simulator_; }

  // Schedule proposals at `when`; nodes that are down at that instant do
  // not propose.
  void propose_all(TimePoint when, const std::vector<std::int64_t>& values);

  // Runs until every currently-up node has decided, or until `deadline`.
  // Returns true if all up nodes decided.
  bool run_until_decided(TimePoint deadline);

  bool node_up(int i) const;
  std::optional<std::int64_t> decision(int i) const;
  TimePoint decision_time(int i) const;
  std::uint32_t rounds_entered(int i) const;
  std::uint64_t consensus_messages(int i) const;

  // Node i's local membership view (driven by its detector banks) and its
  // stability counters — detector accuracy surfaces here as view churn.
  const membership::View& view(int i) const;
  std::uint64_t views_installed(int i) const;
  std::uint64_t coordinator_changes(int i) const;

 private:
  struct Node {
    std::unique_ptr<runtime::ProcessNode> process;
    runtime::ScriptedCrashLayer* crash = nullptr;
    std::vector<std::unique_ptr<runtime::HeartbeaterLayer>> heartbeaters;
    // One width-1 bank per monitored peer (a bank watches one heartbeat
    // source; lane 0 is the (predictor, margin) pair under test).
    std::map<net::NodeId, std::unique_ptr<fd::DetectorBank>> detectors;
    std::unique_ptr<membership::ViewManager> views;
    std::unique_ptr<membership::BankViewFeed> feed;
    std::unique_ptr<ConsensusProcess> consensus;
    std::optional<std::int64_t> decision;
    TimePoint decision_time;
  };

  Config config_;
  sim::Simulator simulator_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<Node> nodes_;
};

}  // namespace fdqos::consensus
