// Chandra–Toueg ◇S rotating-coordinator consensus (the paper's reference
// [4]; reference [6] studies exactly this layer's QoS as a function of the
// failure detector's QoS — reproduced by bench_consensus_qos).
//
// Round r (coordinator c = members[r mod n]):
//   1. every process sends (ESTIMATE, r, estimate, ts) to c;
//   2. c collects a majority of estimates, adopts the one with the highest
//      ts and broadcasts (PROPOSAL, r, v);
//   3. each process waits for c's proposal — adopting it (ts := r) and
//      ACKing — or, if its failure detector suspects c, NACKs and moves to
//      round r+1;
//   4. on a majority of ACKs, c decides v and floods DECIDE; everyone who
//      receives DECIDE decides and re-floods once.
//
// Channels here are fair-lossy (UDP semantics), while Chandra–Toueg assumes
// reliable links; the gap is closed the standard way, with stubborn
// retransmission: a periodic timer re-sends the current round's pending
// messages (estimate / proposal / decide) until progress is made, and a
// coordinator answers stale or duplicate estimates by re-sending its
// proposal for that round. Safety is the algorithm's: a value can only be
// decided after a majority adopted it with timestamp r, and later
// coordinators must adopt from an intersecting majority.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/messages.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::consensus {

class ConsensusProcess final : public runtime::Layer {
 public:
  struct Config {
    net::NodeId self = 0;
    std::vector<net::NodeId> members;  // all participants, including self
    std::uint32_t instance = 1;
    Duration retransmit_interval = Duration::millis(500);
    int decide_floods = 3;  // extra DECIDE broadcasts after deciding
  };

  // suspected(node): the local failure detector's current opinion of node.
  using SuspicionQuery = std::function<bool(net::NodeId)>;
  // decided(value, time, rounds_entered)
  using DecisionObserver =
      std::function<void(std::int64_t, TimePoint, std::uint32_t)>;

  ConsensusProcess(sim::Simulator& simulator, Config config,
                   SuspicionQuery suspected);

  void set_decision_observer(DecisionObserver observer) {
    observer_ = std::move(observer);
  }

  // Start participating with the given initial value. Must be called at
  // most once; processes that crash before proposing simply never call it.
  void propose(std::int64_t value);

  void handle_up(const net::Message& msg) override;

  // Re-evaluate coordinator suspicion now (wire this to the FD observer for
  // prompt NACKs; the retransmit timer also polls it).
  void on_suspicion_change();

  bool has_proposed() const { return proposed_; }
  bool decided() const { return decided_; }
  std::optional<std::int64_t> decision() const;
  std::uint32_t round() const { return round_; }
  std::uint32_t rounds_entered() const { return rounds_entered_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  const Config& config() const { return config_; }

 private:
  struct CoordRound {
    std::set<net::NodeId> estimate_senders;
    std::int64_t best_value = 0;
    std::uint32_t best_ts = 0;
    bool proposal_sent = false;
    std::int64_t proposal_value = 0;
    std::set<net::NodeId> acks;
  };

  net::NodeId coordinator_of(std::uint32_t round) const;
  std::size_t majority() const { return config_.members.size() / 2 + 1; }

  void send(const ConsensusMsg& msg, net::NodeId to);
  void broadcast(const ConsensusMsg& msg);  // to every other member

  void enter_round(std::uint32_t round);
  void send_estimate();
  void maybe_propose(CoordRound& state, std::uint32_t round);
  void handle_estimate(const ConsensusMsg& msg, net::NodeId from);
  void handle_proposal(const ConsensusMsg& msg, net::NodeId from);
  void handle_ack(const ConsensusMsg& msg, net::NodeId from);
  void handle_decide(const ConsensusMsg& msg);
  void check_coordinator_suspicion();
  void decide(std::int64_t value);
  void on_retransmit_timer();

  sim::Simulator& simulator_;
  Config config_;
  SuspicionQuery suspected_;
  DecisionObserver observer_;

  bool proposed_ = false;
  std::int64_t estimate_ = 0;
  std::uint32_t ts_ = 0;
  std::uint32_t round_ = 0;
  std::uint32_t rounds_entered_ = 0;
  bool awaiting_proposal_ = false;  // phase 3 of round_ still open
  std::map<std::uint32_t, CoordRound> coord_rounds_;

  bool decided_ = false;
  std::int64_t decision_ = 0;
  int decide_floods_left_ = 0;

  std::uint64_t messages_sent_ = 0;
};

}  // namespace fdqos::consensus
