// Deterministic fork/join parallelism for experiment workloads.
//
// Experiments decompose into self-contained tasks (one seeded simulation
// per run, one candidate fit per ARIMA order, one grid point per bench
// sweep); the pool fans an index range over a fixed set of threads and the
// caller merges results *in index order* afterwards, so parallel output is
// byte-identical to serial. There is deliberately no work stealing and no
// task graph: an atomic next-index counter is all the scheduling these
// chunky tasks need, and it keeps the subsystem dependency-free.
//
// Contract:
//   * jobs == 1 runs the body inline on the calling thread — exactly the
//     serial loop, no threads, no synchronization.
//   * jobs == 0 means default_jobs() (hardware_concurrency unless
//     overridden via set_default_jobs / a --jobs flag).
//   * The first task exception cancels the dispatch: un-started indices
//     are skipped, already-running tasks finish, and the exception is
//     rethrown from parallel_for on the calling thread.
//   * Re-entrant use of the *same* pool from inside one of its tasks
//     throws std::logic_error (it would corrupt the shared dispatch
//     state). Using a *different* pool from inside a task is allowed —
//     each pool owns its threads — but inner work should normally run
//     with jobs = 1; see docs/parallelism.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdqos::exec {

// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_jobs();

// Process-wide default parallelism: hardware_jobs() unless overridden.
// set_default_jobs(0) restores the hardware default.
std::size_t default_jobs();
void set_default_jobs(std::size_t jobs);

// True while the calling thread is executing a task of any ThreadPool.
bool in_parallel_region();

class ThreadPool {
 public:
  // `jobs` counts the calling thread: a pool with jobs == N spawns N - 1
  // workers and the caller participates in every dispatch. jobs == 0
  // resolves to default_jobs() at construction time.
  explicit ThreadPool(std::size_t jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t jobs() const { return jobs_; }

  // Runs body(i) for every i in [0, n), blocking until all started tasks
  // finish. Order of execution across threads is unspecified; callers
  // that need determinism must write results by index and reduce in index
  // order after this returns. Empty ranges return immediately.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  // parallel_for that collects fn(i) into a vector indexed by i.
  // R must be default-constructible.
  template <typename R>
  std::vector<R> parallel_map(std::size_t n,
                              const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();
  // Pulls indices until the range drains or a task fails.
  void drain();

  const std::size_t jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers to finish
  std::uint64_t generation_ = 0;      // bumped per dispatch
  std::size_t busy_workers_ = 0;      // workers still in the current dispatch
  bool stopping_ = false;

  // Per-dispatch state, valid while busy_workers_ > 0 or the caller drains.
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> cancelled_{false};
  std::exception_ptr error_;  // guarded by mu_
};

// One-shot helpers: construct a pool, dispatch, join. `jobs` as above.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t jobs = 0);

template <typename R>
std::vector<R> parallel_map(std::size_t n,
                            const std::function<R(std::size_t)>& fn,
                            std::size_t jobs = 0) {
  ThreadPool pool(jobs);
  return pool.parallel_map<R>(n, fn);
}

}  // namespace fdqos::exec
