#include "exec/thread_pool.hpp"

#include <stdexcept>

namespace fdqos::exec {
namespace {

// The pool whose task the calling thread is currently executing. Used to
// reject re-entrant dispatch on the same pool while still allowing a task
// to own and drive a *different* pool.
thread_local const ThreadPool* t_current_pool = nullptr;

std::atomic<std::size_t> g_default_jobs{0};  // 0 = hardware_jobs()

struct ScopedCurrentPool {
  explicit ScopedCurrentPool(const ThreadPool* pool)
      : saved(t_current_pool) {
    t_current_pool = pool;
  }
  ~ScopedCurrentPool() { t_current_pool = saved; }
  const ThreadPool* saved;
};

}  // namespace

std::size_t hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_jobs() {
  const std::size_t n = g_default_jobs.load(std::memory_order_relaxed);
  return n == 0 ? hardware_jobs() : n;
}

void set_default_jobs(std::size_t jobs) {
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_current_pool != nullptr; }

ThreadPool::ThreadPool(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    {
      ScopedCurrentPool scope(this);
      drain();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::drain() {
  for (;;) {
    if (cancelled_.load(std::memory_order_relaxed)) return;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (t_current_pool == this) {
    throw std::logic_error(
        "exec::ThreadPool: nested parallel_for on the same pool");
  }
  if (jobs_ == 1 || n == 1) {
    // The exact serial path: no threads, no atomics, exceptions propagate
    // directly from the body.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  {
    ScopedCurrentPool scope(this);
    drain();
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t jobs) {
  ThreadPool pool(jobs);
  pool.parallel_for(n, body);
}

}  // namespace fdqos::exec
