#include "exp/chaos.hpp"

#include <cmath>
#include <cstdio>

namespace fdqos::exp {
namespace {

std::string fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, args...);
  return buf;
}

void check_summary_finite(const std::string& detector, const char* metric,
                          const stats::Summary& s,
                          std::vector<InvariantViolation>& out) {
  const bool core_finite = std::isfinite(s.mean) && std::isfinite(s.variance) &&
                           std::isfinite(s.stddev) && std::isfinite(s.sum);
  // min/max are NaN by convention while no sample has been recorded.
  const bool extrema_finite =
      s.count == 0 || (std::isfinite(s.min) && std::isfinite(s.max));
  if (!core_finite || !extrema_finite) {
    out.push_back({"finite-stats",
                   fmt("%s: %s has non-finite fields (count=%llu mean=%g "
                       "stddev=%g min=%g max=%g sum=%g)",
                       detector.c_str(), metric,
                       static_cast<unsigned long long>(s.count), s.mean,
                       s.stddev, s.min, s.max, s.sum)});
  }
}

void check_nonnegative(const std::string& detector, const char* invariant,
                       const char* metric, const stats::Summary& s,
                       std::vector<InvariantViolation>& out) {
  if (s.count > 0 && !(s.min >= 0.0)) {  // !(≥) also catches NaN min
    out.push_back({invariant, fmt("%s: min %s = %g ms < 0 over %llu samples",
                                  detector.c_str(), metric, s.min,
                                  static_cast<unsigned long long>(s.count))});
  }
}

}  // namespace

std::vector<InvariantViolation> qos_invariant_violations(
    const QosReport& report) {
  std::vector<InvariantViolation> out;

  if (report.heartbeats_delivered > report.heartbeats_sent) {
    out.push_back(
        {"heartbeat-accounting",
         fmt("delivered %llu > sent %llu",
             static_cast<unsigned long long>(report.heartbeats_delivered),
             static_cast<unsigned long long>(report.heartbeats_sent))});
  }

  for (const auto& r : report.results) {
    const fd::QosMetrics& m = r.metrics;

    if (m.missed_detections != 0) {
      out.push_back(
          {"completeness",
           fmt("%s: %llu of %llu crashes never suspected", r.name.c_str(),
               static_cast<unsigned long long>(m.missed_detections),
               static_cast<unsigned long long>(m.crashes_observed))});
    }

    const std::uint64_t resolved = m.detections + m.missed_detections;
    if (m.crashes_observed < resolved || m.crashes_observed > resolved + 1) {
      out.push_back(
          {"crash-consistency",
           fmt("%s: crashes=%llu vs detections=%llu + missed=%llu "
               "(must be within [resolved, resolved+1])",
               r.name.c_str(),
               static_cast<unsigned long long>(m.crashes_observed),
               static_cast<unsigned long long>(m.detections),
               static_cast<unsigned long long>(m.missed_detections))});
    }
    // All detectors share the injector, so every result must report the
    // same ground-truth crash count.
    if (m.crashes_observed != report.results.front().metrics.crashes_observed) {
      out.push_back(
          {"crash-consistency",
           fmt("%s: observed %llu crashes but %s observed %llu",
               r.name.c_str(),
               static_cast<unsigned long long>(m.crashes_observed),
               report.results.front().name.c_str(),
               static_cast<unsigned long long>(
                   report.results.front().metrics.crashes_observed))});
    }

    check_nonnegative(r.name, "td-nonnegative", "T_D", m.detection_time_ms,
                      out);
    check_nonnegative(r.name, "tm-nonnegative", "T_M", m.mistake_duration_ms,
                      out);
    check_nonnegative(r.name, "tmr-nonnegative", "T_MR",
                      m.mistake_recurrence_ms, out);

    // A recurrence interval spans at least its opening mistake, so the
    // pooled T_MR sum dominates the T_M sum minus the unpaired mistakes
    // (at most max(T_M) each). Only meaningful once a mistake happened.
    const stats::Summary& tm = m.mistake_duration_ms;
    const stats::Summary& tmr = m.mistake_recurrence_ms;
    if (tm.count > 0 && tmr.count <= tm.count) {
      const double unpaired = static_cast<double>(tm.count - tmr.count);
      const double eps = 1e-6 * (1.0 + std::fabs(tm.sum));
      if (tmr.sum < tm.sum - unpaired * tm.max - eps) {
        out.push_back(
            {"tmr-dominates-tm",
             fmt("%s: sum(T_MR)=%g < sum(T_M)=%g - %g unpaired * max(T_M)=%g",
                 r.name.c_str(), tmr.sum, tm.sum, unpaired, tm.max)});
      }
    }

    if (!(m.query_accuracy >= 0.0 && m.query_accuracy <= 1.0)) {
      out.push_back({"pa-range", fmt("%s: P_A = %g outside [0, 1]",
                                     r.name.c_str(), m.query_accuracy)});
    }
    if (!(m.availability >= 0.0 && m.availability <= 1.0)) {
      out.push_back({"pa-range", fmt("%s: availability = %g outside [0, 1]",
                                     r.name.c_str(), m.availability)});
    }

    check_summary_finite(r.name, "T_D", m.detection_time_ms, out);
    check_summary_finite(r.name, "T_M", m.mistake_duration_ms, out);
    check_summary_finite(r.name, "T_MR", m.mistake_recurrence_ms, out);
    check_summary_finite(r.name, "per-run T_D mean", r.per_run_td_mean_ms, out);
    check_summary_finite(r.name, "per-run availability",
                         r.per_run_availability, out);
  }

  return out;
}

stats::TableWriter chaos_table(const QosReport& report) {
  stats::TableWriter table("Chaos injection (scenario: " +
                           (report.config.chaos_scenario.empty()
                                ? std::string("none")
                                : report.config.chaos_scenario) +
                           ")");
  table.set_columns({"scenario", "runs", "fault_events", "fault_dropped",
                     "duplicated", "crashes", "hb_sent", "hb_delivered"});
  table.add_row({report.config.chaos_scenario.empty()
                     ? "none"
                     : report.config.chaos_scenario,
                 std::to_string(report.config.runs),
                 std::to_string(report.chaos_fault_events),
                 std::to_string(report.chaos_dropped),
                 std::to_string(report.chaos_duplicated),
                 std::to_string(report.total_crashes),
                 std::to_string(report.heartbeats_sent),
                 std::to_string(report.heartbeats_delivered)});
  return table;
}

}  // namespace fdqos::exp
