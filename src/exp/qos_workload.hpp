// exp::QosWorkload — the detector-QoS experiment as a Workload.
//
// This is the orchestration half of the former monolithic
// run_qos_experiment(): config validation, suite/trace/fault-schedule
// assembly, telemetry identity, unit mapping for the three engines
// (seq | lp | fleet), and the ordered post-join reduction into a
// QosReport. The per-unit simulation drivers live in exp/qos_engines.hpp.
//
// Unit mapping (unit_count() and run_unit(u)):
//   non-fleet            one unit per run; seq or LP engine per config.
//   fleet, SimEngine::kSeq   the flattened (run, shard) grid —
//                            run = u / shards, shard = u % shards.
//   fleet, SimEngine::kLp    one unit per run; the run's shards execute
//                            as LPs of one parallel simulator.
// All three reproduce the exact pool shapes (and therefore the jobs
// clamp) the pre-refactor run loops used, so reports stay byte-identical.
//
// Application workloads (workload/leader_election.hpp) embed a QosWorkload
// and delegate these hooks, tapping the detector transition / crash ground
// truth streams through QosExperimentConfig::transition_probe/crash_probe.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "exp/qos_engines.hpp"
#include "exp/workload.hpp"
#include "obs/runs.hpp"

namespace fdqos::exp {

class QosWorkload final : public Workload {
 public:
  explicit QosWorkload(QosExperimentConfig config);
  ~QosWorkload() override;

  const std::string& name() const override;

  void prepare() override;
  std::size_t unit_count() const override;
  void begin(std::size_t jobs) override;
  void run_unit(std::size_t unit) override;
  void reduce() override;
  std::vector<ReportSection> report_sections() const override;
  std::size_t requested_jobs() const override { return config_.jobs; }

  // The config as it actually ran (trace replay may clamp num_cycles,
  // telemetry identity is filled in). Valid after prepare().
  const QosExperimentConfig& config() const { return config_; }
  const std::vector<fd::FdSpec>& suite() const { return suite_; }

  // The finished report. Valid after reduce().
  const QosReport& report() const { return report_; }
  QosReport take_report() { return std::move(report_); }

 private:
  void reduce_single();
  void reduce_fleet();

  QosExperimentConfig config_;
  QosReport report_;
  std::vector<fd::FdSpec> suite_;
  std::shared_ptr<const wan::Trace> trace_data_;
  std::shared_ptr<const std::vector<Duration>> trace_;
  std::shared_ptr<const faultx::FaultSchedule> faults_;
  std::optional<Rng> base_rng_;
  TimePoint run_end_ = TimePoint::origin();
  bool fleet_mode_ = false;
  std::size_t shards_ = 1;    // fleet shard count (resolved in prepare)
  std::size_t lp_jobs_ = 1;   // resolved in begin() from the outer jobs

  std::unique_ptr<detail::ProgressState> progress_;
  std::optional<obs::RunFinalizer> run_guard_;

  // Unit outputs, indexed so reduce() folds them in fixed order.
  std::vector<detail::RunOutput> outputs_;                    // non-fleet
  std::vector<std::vector<detail::FleetShardOutput>> fleet_outputs_;
  // Fleet telemetry: a run is "done" when its last shard drains.
  std::unique_ptr<std::atomic<std::size_t>[]> shards_left_;
  // Fleet obs counter handles, registered in prepare(), flushed in reduce().
  std::vector<obs::Counter*> shard_heartbeats_;
  std::vector<obs::Counter*> shard_timer_events_;
  std::vector<obs::Counter*> shard_coalesced_;
};

}  // namespace fdqos::exp
