// Paper-style rendering of experiment results.
//
// Each figure in the paper plots one QoS metric for the 30 detectors with
// the six safety margins on the x-axis and one line per predictor. The
// tables produced here use the same layout: rows = safety margins,
// columns = predictors.
#pragma once

#include <string>

#include "exp/accuracy_experiment.hpp"
#include "exp/qos_experiment.hpp"
#include "stats/table_writer.hpp"

namespace fdqos::exp {

enum class QosMetricKind {
  kTd,    // mean detection time (Figure 4)
  kTdU,   // max observed detection time (Figure 5)
  kTm,    // mean mistake duration (Figure 6)
  kTmr,   // mean mistake recurrence time (Figure 7)
  kPa,    // query accuracy probability (Figure 8)
};

const char* metric_name(QosMetricKind kind);
const char* metric_unit(QosMetricKind kind);
// Which figure of the paper this metric reproduces.
const char* metric_figure(QosMetricKind kind);
// True when smaller values are better (the arrow in the paper's plots).
bool metric_smaller_is_better(QosMetricKind kind);

double metric_value(const FdQosResult& result, QosMetricKind kind);

// Rows = margins (paper x-axis), columns = predictors (paper series).
stats::TableWriter qos_metric_table(const QosReport& report,
                                    QosMetricKind kind);

// The paper's central negative result, made precise: "it is impossible to
// create a failure detection mechanism with the best accuracy and delay
// together" (§5.3). Returns the detectors not dominated on the
// (speed, accuracy) plane — result A dominates B when A is at least as
// good on both metrics and strictly better on one. A singleton front would
// falsify the claim; the experiments produce a multi-point front.
std::vector<const FdQosResult*> pareto_front(const QosReport& report,
                                             QosMetricKind speed,
                                             QosMetricKind accuracy);

// Front as a table, sorted by the speed metric.
stats::TableWriter pareto_table(const QosReport& report,
                                QosMetricKind speed = QosMetricKind::kTd,
                                QosMetricKind accuracy = QosMetricKind::kPa);

// Run-to-run stability of each detector: per-run mean T_D and per-run
// availability across the experiment's runs (mean ± sd). Exposes how much
// of a figure's structure is signal: paired via the MultiPlexer, detector
// *orderings* are far more stable than the absolute values.
stats::TableWriter qos_variability_table(const QosReport& report);

// Table 3 layout: predictor, msqerr.
stats::TableWriter accuracy_table(const AccuracyReport& report);

// Table 4 layout: link characteristics.
stats::TableWriter link_table(const wan::LinkCharacteristics& link,
                              std::size_t hops = 18);

// One-line experiment header (parameters echo, Table 5 style).
std::string qos_config_summary(const QosExperimentConfig& config);

// The full report rendered through every metric table plus the crash /
// heartbeat tallies — the same bytes a user sees. Equal fingerprints mean
// equal reports; the parallel-engine and bank-vs-legacy equivalence checks
// (bench_parallel, bench_detector_bank, tests/exp) all compare these.
std::string qos_report_fingerprint(const QosReport& report);

}  // namespace fdqos::exp
