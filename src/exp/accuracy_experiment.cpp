#include "exp/accuracy_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "exec/thread_pool.hpp"
#include "forecast/msqerr.hpp"
#include "forecast/shared_predictor.hpp"
#include "obs/progress.hpp"

namespace fdqos::exp {

std::vector<double> generate_delay_series(
    const AccuracyExperimentConfig& config) {
  Rng rng(config.seed);
  Rng delay_rng = rng.fork("accuracy/delay");
  Rng loss_rng = rng.fork("accuracy/loss");
  auto delay_model = wan::make_italy_japan_delay(config.link);
  auto loss_model = wan::make_italy_japan_loss(config.link);

  std::vector<double> delays;
  delays.reserve(config.n_oneway);
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < config.n_oneway; ++i, t += config.eta) {
    if (loss_model->drop(loss_rng, t)) continue;
    delays.push_back(delay_model->sample(delay_rng, t).to_millis_double());
  }
  return delays;
}

AccuracyReport run_accuracy_experiment(const AccuracyExperimentConfig& config) {
  AccuracyReport report;
  report.heartbeats_sent = config.n_oneway;

  std::unique_ptr<obs::ProgressEmitter> progress;
  if (config.progress_interval_s > 0.0) {
    obs::ProgressEmitter::Options opts;
    opts.interval_s = config.progress_interval_s;
    opts.prefix = "[fdqos accuracy]";
    progress = std::make_unique<obs::ProgressEmitter>(std::move(opts));
  }

  const std::vector<double> delays = generate_delay_series(config);
  report.delays_collected = delays.size();
  stats::RunningStats delay_stats;
  for (double d : delays) delay_stats.add(d);
  report.delays_ms = delay_stats.summary();
  if (progress != nullptr) {
    progress->emit("collected %zu delays from %zu heartbeats",
                   report.delays_collected, report.heartbeats_sent);
  }

  // Each predictor scores the same immutable series independently; rows
  // are written by label index, so the report is identical at every jobs
  // value (the final sort sees the same sequence as the serial loop).
  const auto labels = fd::paper_predictor_labels();
  report.rows.resize(labels.size());
  std::atomic<std::size_t> scored{0};
  exec::parallel_for(
      labels.size(),
      [&](std::size_t i) {
        // Scored through the same SharedPredictor handle the DetectorBank
        // uses, so accuracy rows measure exactly the forecasts the bank's
        // lanes consume (the memoized predict() is transparent here: the
        // scorer alternates observe/predict, so every predict is a miss).
        forecast::SharedPredictor predictor(
            fd::make_paper_predictor(labels[i], config.params)());
        const forecast::AccuracyResult acc =
            forecast::evaluate_accuracy(predictor, delays);
        report.rows[i] = {predictor.name(), acc.msqerr, acc.mean_abs_err};
        const std::size_t done =
            scored.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress != nullptr &&
            (progress->due() || done == labels.size())) {
          progress->emit(
              "scored %zu/%zu predictors (last: %s, msqerr %.2f ms^2)", done,
              labels.size(), predictor.name().c_str(), acc.msqerr);
        }
      },
      config.jobs);
  std::sort(report.rows.begin(), report.rows.end(),
            [](const AccuracyRow& a, const AccuracyRow& b) {
              return a.msqerr < b.msqerr;
            });
  return report;
}

}  // namespace fdqos::exp
