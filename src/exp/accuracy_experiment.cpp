#include "exp/accuracy_experiment.hpp"

#include <algorithm>

#include "forecast/msqerr.hpp"

namespace fdqos::exp {

std::vector<double> generate_delay_series(
    const AccuracyExperimentConfig& config) {
  Rng rng(config.seed);
  Rng delay_rng = rng.fork("accuracy/delay");
  Rng loss_rng = rng.fork("accuracy/loss");
  auto delay_model = wan::make_italy_japan_delay(config.link);
  auto loss_model = wan::make_italy_japan_loss(config.link);

  std::vector<double> delays;
  delays.reserve(config.n_oneway);
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < config.n_oneway; ++i, t += config.eta) {
    if (loss_model->drop(loss_rng, t)) continue;
    delays.push_back(delay_model->sample(delay_rng, t).to_millis_double());
  }
  return delays;
}

AccuracyReport run_accuracy_experiment(const AccuracyExperimentConfig& config) {
  AccuracyReport report;
  report.heartbeats_sent = config.n_oneway;

  const std::vector<double> delays = generate_delay_series(config);
  report.delays_collected = delays.size();
  stats::RunningStats delay_stats;
  for (double d : delays) delay_stats.add(d);
  report.delays_ms = delay_stats.summary();

  for (const auto& label : fd::paper_predictor_labels()) {
    auto predictor = fd::make_paper_predictor(label, config.params)();
    const forecast::AccuracyResult acc =
        forecast::evaluate_accuracy(*predictor, delays);
    report.rows.push_back({predictor->name(), acc.msqerr, acc.mean_abs_err});
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const AccuracyRow& a, const AccuracyRow& b) {
              return a.msqerr < b.msqerr;
            });
  return report;
}

}  // namespace fdqos::exp
