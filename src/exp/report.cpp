#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/assert.hpp"
#include "exec/thread_pool.hpp"

namespace fdqos::exp {

const char* metric_name(QosMetricKind kind) {
  switch (kind) {
    case QosMetricKind::kTd: return "T_D (mean detection time)";
    case QosMetricKind::kTdU: return "T_D^U (max detection time)";
    case QosMetricKind::kTm: return "T_M (mean mistake duration)";
    case QosMetricKind::kTmr: return "T_MR (mean mistake recurrence)";
    case QosMetricKind::kPa: return "P_A (query accuracy probability)";
  }
  return "?";
}

const char* metric_unit(QosMetricKind kind) {
  return kind == QosMetricKind::kPa ? "" : "ms";
}

const char* metric_figure(QosMetricKind kind) {
  switch (kind) {
    case QosMetricKind::kTd: return "Figure 4";
    case QosMetricKind::kTdU: return "Figure 5";
    case QosMetricKind::kTm: return "Figure 6";
    case QosMetricKind::kTmr: return "Figure 7";
    case QosMetricKind::kPa: return "Figure 8";
  }
  return "?";
}

bool metric_smaller_is_better(QosMetricKind kind) {
  switch (kind) {
    case QosMetricKind::kTd:
    case QosMetricKind::kTdU:
    case QosMetricKind::kTm:
      return true;
    case QosMetricKind::kTmr:
    case QosMetricKind::kPa:
      return false;
  }
  return true;
}

double metric_value(const FdQosResult& result, QosMetricKind kind) {
  const fd::QosMetrics& m = result.metrics;
  switch (kind) {
    case QosMetricKind::kTd: return m.detection_time_ms.mean;
    case QosMetricKind::kTdU: return m.detection_time_ms.max;
    case QosMetricKind::kTm: return m.mistake_duration_ms.mean;
    case QosMetricKind::kTmr: return m.mistake_recurrence_ms.mean;
    case QosMetricKind::kPa: return m.query_accuracy;
  }
  return 0.0;
}

stats::TableWriter qos_metric_table(const QosReport& report,
                                    QosMetricKind kind) {
  char title[160];
  std::snprintf(title, sizeof title, "%s — %s%s%s", metric_figure(kind),
                metric_name(kind), metric_unit(kind)[0] ? " in " : "",
                metric_unit(kind));
  stats::TableWriter table(title);

  const auto predictors = fd::paper_predictor_labels();
  const auto margins = fd::paper_margin_labels();

  // (predictor, margin) -> value.
  std::map<std::pair<std::string, std::string>, double> values;
  for (const auto& result : report.results) {
    values[{result.predictor_label, result.margin_label}] =
        metric_value(result, kind);
  }

  std::vector<std::string> columns{"safety margin"};
  for (const auto& p : predictors) columns.push_back(p);
  table.set_columns(std::move(columns));

  const int precision = kind == QosMetricKind::kPa ? 6 : 1;
  for (const auto& margin : margins) {
    std::vector<double> row;
    for (const auto& p : predictors) {
      auto it = values.find({p, margin});
      row.push_back(it != values.end() ? it->second : 0.0);
    }
    table.add_row(margin, row, precision);
  }
  return table;
}

std::vector<const FdQosResult*> pareto_front(const QosReport& report,
                                             QosMetricKind speed,
                                             QosMetricKind accuracy) {
  // Normalize both metrics to "bigger is better".
  auto score = [](const FdQosResult& r, QosMetricKind kind) {
    const double v = metric_value(r, kind);
    return metric_smaller_is_better(kind) ? -v : v;
  };
  std::vector<const FdQosResult*> front;
  for (const auto& candidate : report.results) {
    bool dominated = false;
    for (const auto& other : report.results) {
      if (&other == &candidate) continue;
      const bool speed_geq =
          score(other, speed) >= score(candidate, speed);
      const bool acc_geq =
          score(other, accuracy) >= score(candidate, accuracy);
      const bool strictly_better =
          score(other, speed) > score(candidate, speed) ||
          score(other, accuracy) > score(candidate, accuracy);
      if (speed_geq && acc_geq && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(&candidate);
  }
  std::sort(front.begin(), front.end(),
            [&](const FdQosResult* a, const FdQosResult* b) {
              return score(*a, speed) > score(*b, speed);
            });
  return front;
}

stats::TableWriter pareto_table(const QosReport& report, QosMetricKind speed,
                                QosMetricKind accuracy) {
  char title[160];
  std::snprintf(title, sizeof title, "Pareto front on (%s, %s)",
                metric_name(speed), metric_name(accuracy));
  stats::TableWriter table(title);
  table.set_columns({"detector", metric_name(speed), metric_name(accuracy)});
  for (const FdQosResult* result : pareto_front(report, speed, accuracy)) {
    table.add_row({result->name,
                   stats::format_double(metric_value(*result, speed), 1),
                   stats::format_double(metric_value(*result, accuracy), 6)});
  }
  return table;
}

stats::TableWriter qos_variability_table(const QosReport& report) {
  stats::TableWriter table("Run-to-run variability (mean ± sd across runs)");
  table.set_columns({"detector", "runs", "T_D per-run mean (ms)",
                     "availability per-run"});
  for (const auto& result : report.results) {
    const auto& td = result.per_run_td_mean_ms;
    const auto& avail = result.per_run_availability;
    table.add_row({result.name, std::to_string(avail.count),
                   stats::format_double(td.mean, 1) + " ± " +
                       stats::format_double(td.stddev, 1),
                   stats::format_double(avail.mean, 6) + " ± " +
                       stats::format_double(avail.stddev, 6)});
  }
  return table;
}

stats::TableWriter accuracy_table(const AccuracyReport& report) {
  stats::TableWriter table("Table 3 — Predictor accuracy (msqerr, ms^2)");
  table.set_columns({"Predictor", "msqerr (ms^2)", "mean |err| (ms)"});
  for (const auto& row : report.rows) {
    table.add_row({row.predictor, stats::format_double(row.msqerr, 3),
                   stats::format_double(row.mean_abs_err, 3)});
  }
  return table;
}

stats::TableWriter link_table(const wan::LinkCharacteristics& link,
                              std::size_t hops) {
  stats::TableWriter table(
      "Table 4 — Characteristics of the (modelled) WAN connection");
  table.set_columns({"Quantity", "Value"});
  table.add_row({"Mean one-way delay",
                 stats::format_double(link.delay_ms.mean, 1) + " ms"});
  table.add_row({"Standard deviation",
                 stats::format_double(link.delay_ms.stddev, 1) + " ms"});
  table.add_row({"Maximum one-way delay",
                 stats::format_double(link.delay_ms.max, 0) + " ms"});
  table.add_row({"Minimum one-way delay",
                 stats::format_double(link.delay_ms.min, 0) + " ms"});
  table.add_row({"Number of hops (modelled path)", std::to_string(hops)});
  table.add_row({"Loss probability",
                 stats::format_double(link.loss_probability * 100.0, 2) + " %"});
  return table;
}

std::string qos_config_summary(const QosExperimentConfig& config) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "runs=%zu NumCycles=%lld eta=%s MTTC=%s TTR=%s warmup=%s "
                "seed=%llu jobs=%zu",
                config.runs, static_cast<long long>(config.num_cycles),
                config.eta.to_string().c_str(), config.mttc.to_string().c_str(),
                config.ttr.to_string().c_str(),
                config.warmup.to_string().c_str(),
                static_cast<unsigned long long>(config.seed),
                config.jobs == 0 ? exec::default_jobs() : config.jobs);
  std::string line = buf;
  if (!config.trace_path.empty()) {
    line += " trace=" + config.trace_path +
            " policy=" + wan::replay_policy_name(config.replay_policy);
  }
  if (!config.chaos_scenario.empty()) line += " chaos=" + config.chaos_scenario;
  // The bank is the default engine; only the opt-out is worth a mention
  // (and the default summary bytes stay exactly as before the refactor).
  if (!config.use_detector_bank) line += " engine=legacy";
  // Same rule for the simulation engine: seq is the default, silent.
  if (config.sim_engine == SimEngine::kLp) {
    line += " sim=lp lps=" + std::to_string(config.lps);
  }
  // Fleet mode: echo only when active, so the single-endpoint summary
  // bytes stay exactly as before. The resolved shard count is echoed (like
  // jobs, it may derive from the machine; the report bytes never do).
  if (config.endpoints > 1) {
    line += " endpoints=" + std::to_string(config.endpoints) +
            " shards=" + std::to_string(resolve_fleet_shards(config));
  }
  return line;
}

std::string qos_report_fingerprint(const QosReport& report) {
  std::string all;
  for (const auto kind :
       {QosMetricKind::kTd, QosMetricKind::kTdU, QosMetricKind::kTm,
        QosMetricKind::kTmr, QosMetricKind::kPa}) {
    all += qos_metric_table(report, kind).to_csv();
  }
  char tail[96];
  std::snprintf(tail, sizeof tail, "crashes=%llu sent=%llu delivered=%llu",
                static_cast<unsigned long long>(report.total_crashes),
                static_cast<unsigned long long>(report.heartbeats_sent),
                static_cast<unsigned long long>(report.heartbeats_delivered));
  return all + tail;
}

}  // namespace fdqos::exp
