#include "exp/workload.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/assert.hpp"
#include "exec/thread_pool.hpp"

namespace fdqos::exp {

void run_workload(Workload& workload) {
  workload.prepare();
  const std::size_t units = workload.unit_count();
  FDQOS_REQUIRE(units > 0);
  // The clamp every engine used before the harness existed: never spawn
  // more workers than units, 0 means the hardware default.
  const std::size_t jobs =
      std::min(workload.requested_jobs() == 0 ? exec::default_jobs()
                                              : workload.requested_jobs(),
               units);
  workload.begin(jobs);
  exec::ThreadPool pool(jobs);
  pool.parallel_for(units,
                    [&workload](std::size_t unit) { workload.run_unit(unit); });
  workload.reduce();
}

namespace {

// An ordered map keeps workload_names() deterministic without a sort.
std::map<std::string, WorkloadFactory>& registry() {
  static std::map<std::string, WorkloadFactory> instance;
  return instance;
}

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void register_workload(const std::string& name, WorkloadFactory factory) {
  FDQOS_REQUIRE(!name.empty());
  FDQOS_REQUIRE(factory != nullptr);
  std::lock_guard<std::mutex> lock(registry_mu());
  registry()[name] = std::move(factory);
}

std::vector<std::string> workload_names() {
  std::lock_guard<std::mutex> lock(registry_mu());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const QosExperimentConfig& config) {
  WorkloadFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mu());
    const auto it = registry().find(name);
    if (it == registry().end()) return nullptr;
    factory = it->second;
  }
  return factory(config);
}

}  // namespace fdqos::exp
