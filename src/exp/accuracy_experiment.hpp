// Predictor-accuracy experiment (paper §5.1 / Table 3).
//
// Collects the one-way transmission delays of N successive heartbeats over
// the Italy–Japan link model, then scores every paper predictor by the mean
// square error of its one-step-ahead forecasts. Lost heartbeats simply do
// not contribute observations, as on the real link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "fd/suite.hpp"
#include "stats/running_stats.hpp"
#include "wan/italy_japan.hpp"

namespace fdqos::exp {

struct AccuracyExperimentConfig {
  std::size_t n_oneway = 100000;  // N_oneway heartbeats sent
  Duration eta = Duration::seconds(1);
  std::uint64_t seed = 42;
  wan::ItalyJapanParams link{};
  fd::PaperParams params{};
  // When > 0, emit a progress line to stderr every this many wall-clock
  // seconds while collecting delays and scoring predictors.
  double progress_interval_s = 0.0;
  // Worker threads for predictor scoring (each predictor scores the same
  // immutable delay series independently; rows are written by index, so
  // the report is identical at every jobs value). 0 = exec::default_jobs(),
  // 1 = serial.
  std::size_t jobs = 0;
};

struct AccuracyRow {
  std::string predictor;
  double msqerr = 0.0;        // ms²
  double mean_abs_err = 0.0;  // ms
};

struct AccuracyReport {
  std::vector<AccuracyRow> rows;  // sorted by msqerr ascending (Table 3)
  stats::Summary delays_ms;       // the collected delay series
  std::size_t heartbeats_sent = 0;
  std::size_t delays_collected = 0;  // after loss
};

// Generates the delay series for the experiment (also used by tests and by
// the ARIMA order-selection bench).
std::vector<double> generate_delay_series(const AccuracyExperimentConfig& config);

AccuracyReport run_accuracy_experiment(const AccuracyExperimentConfig& config);

}  // namespace fdqos::exp
