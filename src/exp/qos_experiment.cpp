#include "exp/qos_experiment.hpp"

#include <functional>
#include <memory>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "fd/freshness_detector.hpp"
#include "obs/instruments.hpp"
#include "obs/progress.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "sim/simulator.hpp"
#include "wan/trace.hpp"

namespace fdqos::exp {
namespace {

constexpr net::NodeId kMonitored = 0;
constexpr net::NodeId kMonitor = 1;

// Pooled per-detector accumulators across runs.
struct Pooled {
  stats::RunningStats td;
  stats::RunningStats tm;
  stats::RunningStats tmr;
  Duration up = Duration::zero();
  Duration wrong = Duration::zero();
  std::uint64_t crashes = 0;
  std::uint64_t detections = 0;
  std::uint64_t missed = 0;
  // One sample per run: that run's mean T_D / availability.
  stats::RunningStats per_run_td;
  stats::RunningStats per_run_availability;
};

fd::QosMetrics pooled_metrics(const Pooled& p) {
  fd::QosMetrics m;
  m.detection_time_ms = p.td.summary();
  m.mistake_duration_ms = p.tm.summary();
  m.mistake_recurrence_ms = p.tmr.summary();
  m.crashes_observed = p.crashes;
  m.detections = p.detections;
  m.missed_detections = p.missed;
  m.mistakes = p.tm.count();
  if (p.up > Duration::zero()) {
    m.availability =
        1.0 - p.wrong.to_seconds_double() / p.up.to_seconds_double();
  }
  if (p.tmr.count() > 0 && p.tmr.mean() > 0.0) {
    m.query_accuracy =
        std::max(0.0, (p.tmr.mean() - p.tm.mean()) / p.tmr.mean());
  } else {
    m.query_accuracy = m.availability;
  }
  return m;
}

}  // namespace

QosReport run_qos_experiment(const QosExperimentConfig& config) {
  FDQOS_REQUIRE(config.runs > 0);
  FDQOS_REQUIRE(config.num_cycles > 0);

  std::vector<fd::FdSpec> suite;
  if (config.include_paper_suite) {
    suite = fd::make_paper_suite(config.params);
  }
  if (config.include_constant_baseline) {
    auto baselines =
        fd::make_constant_margin_suite(config.baseline_margin_ms, config.params);
    for (auto& spec : baselines) suite.push_back(std::move(spec));
  }
  for (const auto& spec : config.extra_specs) suite.push_back(spec);
  FDQOS_REQUIRE(!suite.empty());

  std::vector<Pooled> pooled(suite.size());
  QosReport report;
  report.config = config;

  const Rng base_rng(config.seed);
  const TimePoint run_end =
      TimePoint::origin() + config.eta * config.num_cycles + config.ttr +
      Duration::seconds(5);

  std::unique_ptr<obs::ProgressEmitter> progress;
  if (config.progress_interval_s > 0.0) {
    obs::ProgressEmitter::Options opts;
    opts.interval_s = config.progress_interval_s;
    opts.prefix = "[fdqos qos]";
    progress = std::make_unique<obs::ProgressEmitter>(std::move(opts));
  }

  for (std::size_t run = 0; run < config.runs; ++run) {
    Rng run_rng = base_rng.fork(run);

    sim::Simulator simulator;
    net::SimTransport transport(simulator, run_rng.fork("net"));
    net::SimTransport::LinkConfig link;
    if (config.trace_path.empty()) {
      link.delay = wan::make_italy_japan_delay(config.link);
      link.loss = wan::make_italy_japan_loss(config.link);
    } else {
      auto replay = wan::TraceReplayDelay::load(config.trace_path);
      FDQOS_REQUIRE(replay != nullptr);
      // Each run replays the identical trace; runs differ only in the
      // crash schedule.
      link.delay = std::move(replay);
    }
    transport.set_link(kMonitored, kMonitor, std::move(link));

    // Monitored node: Heartbeater over SimCrash.
    runtime::ProcessNode monitored(transport, kMonitored);
    auto& crash_layer = monitored.push(std::make_unique<runtime::SimCrashLayer>(
        simulator,
        runtime::SimCrashLayer::Config{config.mttc, config.ttr},
        run_rng.fork("crash")));
    runtime::HeartbeaterLayer::Config hb_config;
    hb_config.eta = config.eta;
    hb_config.self = kMonitored;
    hb_config.monitor = kMonitor;
    hb_config.max_cycles = config.num_cycles;
    auto& heartbeater = monitored.push(
        std::make_unique<runtime::HeartbeaterLayer>(simulator, hb_config));

    // Monitor node: MultiPlexer fanning out to every detector.
    runtime::ProcessNode monitor(transport, kMonitor);
    auto& mux = monitor.push(std::make_unique<runtime::MultiPlexerLayer>());

    const TimePoint warmup_end = TimePoint::origin() + config.warmup;
    std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;
    std::vector<fd::QosTracker> trackers;
    detectors.reserve(suite.size());
    trackers.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      trackers.emplace_back(warmup_end);
    }
    for (std::size_t i = 0; i < suite.size(); ++i) {
      fd::FreshnessDetector::Config fd_config;
      fd_config.eta = config.eta;
      fd_config.monitored = kMonitored;
      fd_config.cold_start_timeout = config.cold_start_timeout;
      fd_config.name = suite[i].name;
      auto detector = std::make_unique<fd::FreshnessDetector>(
          simulator, fd_config, suite[i].make_predictor(),
          suite[i].make_margin());
      fd::QosTracker* tracker = &trackers[i];
      detector->set_observer([tracker](TimePoint t, bool suspecting) {
        if (suspecting) {
          tracker->suspect_started(t);
        } else {
          tracker->suspect_ended(t);
        }
      });
      monitor.attach_unowned(mux, *detector);
      detectors.push_back(std::move(detector));
    }

    crash_layer.set_observer([&trackers](TimePoint t, bool crashed) {
      for (auto& tracker : trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
    });

    monitored.start();
    monitor.start();

    // Telemetry tick: a repeating virtual-time event that emits a status
    // line whenever enough *wall* time has passed. Virtual runs execute
    // thousands of simulated seconds per wall second, so the tick is cheap
    // and the wall-clock rate limiter in ProgressEmitter does the pacing.
    std::function<void()> progress_tick;
    if (progress != nullptr) {
      const Duration tick_every = config.eta * 5;
      progress_tick = [&, run] {
        if (progress->due()) {
          std::size_t suspecting = 0;
          for (const auto& d : detectors) {
            if (d->suspecting()) ++suspecting;
          }
          const auto& hb_stats = transport.link_stats(kMonitored, kMonitor);
          if (obs::enabled()) {
            obs::instruments().experiment_run.set(
                static_cast<double>(run + 1));
            obs::instruments().fd_suspecting.set(
                static_cast<double>(suspecting));
          }
          progress->emit(
              "run %zu/%zu t=%.0fs cycles=%lld/%lld crashes=%llu "
              "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
              run + 1, config.runs, simulator.now().to_seconds_double(),
              static_cast<long long>(heartbeater.cycles_sent()),
              static_cast<long long>(config.num_cycles),
              static_cast<unsigned long long>(crash_layer.crash_count()),
              static_cast<unsigned long long>(hb_stats.sent),
              static_cast<unsigned long long>(hb_stats.delivered),
              static_cast<unsigned long long>(hb_stats.sent -
                                              hb_stats.delivered),
              suspecting, detectors.size());
        }
        simulator.schedule_after(tick_every, progress_tick);
      };
      simulator.schedule_after(tick_every, progress_tick);
    }

    simulator.run_until(run_end);

    for (auto& tracker : trackers) tracker.finalize(run_end);

    for (std::size_t i = 0; i < suite.size(); ++i) {
      Pooled& p = pooled[i];
      p.td.merge(trackers[i].td_stats());
      p.tm.merge(trackers[i].tm_stats());
      p.tmr.merge(trackers[i].tmr_stats());
      p.up += trackers[i].observed_up_time();
      p.wrong += trackers[i].wrong_suspicion_time();
      p.crashes += trackers[i].crash_count();
      p.detections += trackers[i].detection_count();
      p.missed += trackers[i].missed_detection_count();
      if (trackers[i].td_stats().count() > 0) {
        p.per_run_td.add(trackers[i].td_stats().mean());
      }
      const fd::QosMetrics run_metrics = trackers[i].metrics();
      p.per_run_availability.add(run_metrics.availability);
    }
    report.total_crashes += crash_layer.crash_count();
    report.heartbeats_sent += transport.link_stats(kMonitored, kMonitor).sent;
    report.heartbeats_delivered +=
        transport.link_stats(kMonitored, kMonitor).delivered;

    FDQOS_LOG_INFO("qos run %zu/%zu: %llu crashes", run + 1, config.runs,
                   static_cast<unsigned long long>(crash_layer.crash_count()));
  }

  if (progress != nullptr) {
    progress->emit(
        "done: %zu runs, %llu crashes, %llu heartbeats sent, %llu delivered",
        config.runs, static_cast<unsigned long long>(report.total_crashes),
        static_cast<unsigned long long>(report.heartbeats_sent),
        static_cast<unsigned long long>(report.heartbeats_delivered));
  }

  report.results.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    FdQosResult result;
    result.name = suite[i].name;
    result.predictor_label = suite[i].predictor_label;
    result.margin_label = suite[i].margin_label;
    result.metrics = pooled_metrics(pooled[i]);
    result.per_run_td_mean_ms = pooled[i].per_run_td.summary();
    result.per_run_availability = pooled[i].per_run_availability.summary();
    report.results.push_back(std::move(result));
  }
  return report;
}

const FdQosResult* find_result(const QosReport& report,
                               const std::string& name) {
  for (const auto& result : report.results) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

}  // namespace fdqos::exp
