// Public entry points of the QoS experiment. The implementation lives in
// the workload layer: exp/qos_workload.{hpp,cpp} orchestrates (config
// validation, suite/trace/fault assembly, unit mapping, ordered
// reduction), exp/qos_engines.{hpp,cpp} holds the per-unit simulation
// drivers, and exp/workload.{hpp,cpp} owns the fan-out/join rule. This
// file is the stable façade the CLI, benches and tests call.
#include "exp/qos_experiment.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "exec/thread_pool.hpp"
#include "exp/qos_workload.hpp"
#include "exp/workload.hpp"

namespace fdqos::exp {

QosReport run_qos_experiment(const QosExperimentConfig& config) {
  QosWorkload workload(config);
  run_workload(workload);
  return workload.take_report();
}

const FdQosResult* find_result(const QosReport& report,
                               const std::string& name) {
  for (const auto& result : report.results) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

std::uint64_t fleet_endpoint_seed(std::uint64_t seed, std::size_t endpoint) {
  // Endpoint 0 IS the experiment seed, so a 1-endpoint fleet reproduces
  // the legacy single-endpoint run bit-for-bit; the rest draw from a
  // dedicated substream so no endpoint's tree collides with the run forks.
  if (endpoint == 0) return seed;
  return Rng(seed).fork("endpoint").fork(endpoint).next_u64();
}

std::size_t resolve_fleet_shards(const QosExperimentConfig& config) {
  const std::size_t endpoints = config.endpoints == 0 ? 1 : config.endpoints;
  const std::size_t shards = config.fleet_shards == 0
                                 ? std::min(endpoints, exec::default_jobs())
                                 : std::min(config.fleet_shards, endpoints);
  return std::max<std::size_t>(shards, 1);
}

QosReport fleet_endpoint_view(const QosReport& report, std::size_t endpoint) {
  FDQOS_REQUIRE(endpoint < report.endpoint_results.size());
  QosReport view;
  // The config of the equivalent standalone experiment: same knobs, the
  // endpoint's own seed, fleet mode off. Its fingerprint is directly
  // comparable to a run_qos_experiment call with this config.
  view.config = report.config;
  view.config.seed = fleet_endpoint_seed(report.config.seed, endpoint);
  view.config.endpoints = 1;
  view.config.fleet_shards = 0;
  view.config.force_fleet_engine = false;
  view.results = report.endpoint_results[endpoint];
  view.total_crashes = report.endpoint_crashes[endpoint];
  view.heartbeats_sent = report.endpoint_hb_sent[endpoint];
  view.heartbeats_delivered = report.endpoint_hb_delivered[endpoint];
  return view;
}

}  // namespace fdqos::exp
