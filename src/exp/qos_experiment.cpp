#include "exp/qos_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "exec/thread_pool.hpp"
#include "faultx/fault_models.hpp"
#include "faultx/scenarios.hpp"
#include "fd/freshness_detector.hpp"
#include "obs/instruments.hpp"
#include "obs/progress.hpp"
#include "obs/runs.hpp"
#include "net/lp_transport.hpp"
#include "net/sim_transport.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "sim/parallel_simulator.hpp"
#include "sim/simulator.hpp"
#include "wan/trace.hpp"

namespace fdqos::exp {
namespace {

constexpr net::NodeId kMonitored = 0;
constexpr net::NodeId kMonitor = 1;

// Pooled per-detector accumulators across runs.
struct Pooled {
  stats::RunningStats td;
  stats::RunningStats tm;
  stats::RunningStats tmr;
  Duration up = Duration::zero();
  Duration wrong = Duration::zero();
  std::uint64_t crashes = 0;
  std::uint64_t detections = 0;
  std::uint64_t missed = 0;
  // One sample per run: that run's mean T_D / availability.
  stats::RunningStats per_run_td;
  stats::RunningStats per_run_availability;
};

fd::QosMetrics pooled_metrics(const Pooled& p) {
  fd::QosMetrics m;
  m.detection_time_ms = p.td.summary();
  m.mistake_duration_ms = p.tm.summary();
  m.mistake_recurrence_ms = p.tmr.summary();
  m.crashes_observed = p.crashes;
  m.detections = p.detections;
  m.missed_detections = p.missed;
  m.mistakes = p.tm.count();
  if (p.up > Duration::zero()) {
    m.availability =
        1.0 - p.wrong.to_seconds_double() / p.up.to_seconds_double();
  }
  if (p.tmr.count() > 0 && p.tmr.mean() > 0.0) {
    m.query_accuracy =
        std::max(0.0, (p.tmr.mean() - p.tm.mean()) / p.tmr.mean());
  } else {
    m.query_accuracy = m.availability;
  }
  return m;
}

// One finalized tracker folded into a pooled accumulator. Every engine
// (seq, lp, fleet) reduces through this one function in a fixed order, so
// the pooled moments never depend on the engine or on scheduling.
void merge_tracker(Pooled& p, const fd::QosTracker& tracker) {
  p.td.merge(tracker.td_stats());
  p.tm.merge(tracker.tm_stats());
  p.tmr.merge(tracker.tmr_stats());
  p.up += tracker.observed_up_time();
  p.wrong += tracker.wrong_suspicion_time();
  p.crashes += tracker.crash_count();
  p.detections += tracker.detection_count();
  p.missed += tracker.missed_detection_count();
  if (tracker.td_stats().count() > 0) {
    p.per_run_td.add(tracker.td_stats().mean());
  }
  p.per_run_availability.add(tracker.metrics().availability);
}

std::vector<FdQosResult> results_from_pooled(
    const std::vector<fd::FdSpec>& suite, const std::vector<Pooled>& pooled) {
  std::vector<FdQosResult> results;
  results.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    FdQosResult result;
    result.name = suite[i].name;
    result.predictor_label = suite[i].predictor_label;
    result.margin_label = suite[i].margin_label;
    result.metrics = pooled_metrics(pooled[i]);
    result.per_run_td_mean_ms = pooled[i].per_run_td.summary();
    result.per_run_availability = pooled[i].per_run_availability.summary();
    results.push_back(std::move(result));
  }
  return results;
}

// Cached gauge handles for one detector lane, registered once per
// experiment and refreshed by the winning progress tick — live scrapes see
// each detector's trust state, running mistake/detection counts, current
// timeout δ and windowed T_D/T_M estimates without waiting for the report.
struct LaneGauges {
  obs::Gauge* suspect = nullptr;       // 1 while suspecting
  obs::Gauge* timeout_ms = nullptr;    // current δ = pred + sm
  obs::Gauge* mistakes = nullptr;      // recorded T_M samples so far
  obs::Gauge* detections = nullptr;    // detections so far
  obs::Gauge* recent_td_ms = nullptr;  // EWMA T_D (NaN until first crash)
  obs::Gauge* recent_tm_ms = nullptr;  // EWMA T_M (NaN until first mistake)
};

// Telemetry shared by every concurrent run. The emitter's own mutex keeps
// single calls atomic; `mu` additionally serializes the due()+emit() pair
// and the gauge refresh so a status line and the gauges it reflects stay
// consistent with each other.
struct ProgressState {
  explicit ProgressState(obs::ProgressEmitter::Options opts)
      : emitter(std::move(opts)) {}

  obs::ProgressEmitter emitter;
  std::mutex mu;
  std::atomic<std::size_t> runs_started{0};
  std::atomic<std::size_t> runs_done{0};
  std::atomic<std::uint64_t> crashes_done{0};  // crashes in completed runs

  // Per-detector gauges (index-aligned with the suite; empty when obs is
  // off). Concurrent runs share the handles: the tick that wins `mu`
  // publishes its own run's lane state and stamps source_run so a scrape
  // knows which run it is looking at.
  std::vector<LaneGauges> lanes;
  obs::Gauge* source_run = nullptr;
  obs::Gauge* timer_lag_ms = nullptr;  // next freshness deadline − now
};

// Everything one run produces, extracted so runs can execute on pool
// threads and be reduced in run order afterwards.
struct RunOutput {
  std::vector<fd::QosTracker> trackers;  // finalized, index-aligned w/ suite
  std::uint64_t crash_count = 0;
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_delivered = 0;
  faultx::FaultyTransport::Stats chaos;  // zero when no scenario active
  fd::DetectorBank::Counters bank;       // engine counters for this run
  sim::ParallelSimulator::Stats sim;     // zero under the sequential engine
};

// The per-run link stack, identical under both engines: trace replay or the
// synthetic Italy→Japan models, optionally wrapped by chaos and recording.
// RNG forks are pure functions of (parent, name), so sharing this builder
// keeps the two engines' draw sequences aligned by construction.
net::SimTransport::LinkConfig make_link_config(
    const QosExperimentConfig& config,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run) {
  net::SimTransport::LinkConfig link;
  if (trace == nullptr) {
    link.delay = wan::make_italy_japan_delay(config.link);
    link.loss = wan::make_italy_japan_loss(config.link);
  } else {
    // Each run replays the identical trace (loaded once, shared
    // immutably; the replay cursor is per-instance); runs differ only in
    // the crash schedule. With the default truncate policy the caller has
    // already clamped num_cycles to the trace length.
    link.delay =
        std::make_unique<wan::TraceReplayDelay>(trace, config.replay_policy);
  }
  if (faults != nullptr) {
    // Chaos: the same immutable schedule overlays every run; all per-run
    // fault state (burst chains, duplication draws) lives in the wrappers.
    link.delay =
        std::make_unique<faultx::FaultyDelay>(std::move(link.delay), faults);
    link.loss =
        std::make_unique<faultx::FaultyLoss>(std::move(link.loss), faults);
  }
  if (config.record_hub != nullptr) {
    // Tracestore hook: capture the delay stream exactly as the link
    // produced it — outside the fault wrapper, so a chaos run records the
    // faulted delays and becomes a replayable artifact. One shard per run
    // index keeps parallel runs race-free and the merge order fixed.
    link.delay = std::make_unique<wan::RecordingDelay>(
        std::move(link.delay), config.record_hub, run);
  }
  return link;
}

// One self-contained seeded simulation (paper run). Reads only immutable
// shared state (config, suite, trace data); all mutable state is local.
RunOutput run_one(const QosExperimentConfig& config,
                  const std::vector<fd::FdSpec>& suite,
                  const std::shared_ptr<const std::vector<Duration>>& trace,
                  const std::shared_ptr<const faultx::FaultSchedule>& faults,
                  std::size_t run, const Rng& base_rng, TimePoint run_end,
                  ProgressState* progress) {
  Rng run_rng = base_rng.fork(run);
  if (progress != nullptr) {
    progress->runs_started.fetch_add(1, std::memory_order_relaxed);
  }

  sim::Simulator simulator;
  net::SimTransport transport(simulator, run_rng.fork("net"));
  transport.set_link(kMonitored, kMonitor,
                     make_link_config(config, trace, faults, run));

  // Transport-level faults (partitions, flaps, duplication, clock stamps)
  // wrap only the monitored node's view of the network.
  std::optional<faultx::FaultyTransport> chaos_net;
  net::Transport* monitored_net = &transport;
  if (faults != nullptr) {
    chaos_net.emplace(transport, faults, run_rng.fork("faultx"));
    monitored_net = &*chaos_net;
  }

  // Monitored node: Heartbeater over SimCrash.
  runtime::ProcessNode monitored(*monitored_net, kMonitored);
  auto& crash_layer = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{config.mttc, config.ttr},
      run_rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb_config;
  hb_config.eta = config.eta;
  hb_config.self = kMonitored;
  hb_config.monitor = kMonitor;
  hb_config.max_cycles = config.num_cycles;
  auto& heartbeater = monitored.push(
      std::make_unique<runtime::HeartbeaterLayer>(simulator, hb_config));

  // Monitor node: MultiPlexer fanning out to every detector.
  runtime::ProcessNode monitor(transport, kMonitor);
  auto& mux = monitor.push(std::make_unique<runtime::MultiPlexerLayer>());

  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  std::vector<fd::QosTracker> trackers;
  trackers.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    trackers.emplace_back(warmup_end);
  }
  // Both engines funnel transitions through the same per-lane sink, so the
  // tracker update sequence (and the optional probe stream) is identical.
  auto on_transition = [&trackers, &config, run](std::size_t i, TimePoint t,
                                                 bool suspecting) {
    if (suspecting) {
      trackers[i].suspect_started(t);
    } else {
      trackers[i].suspect_ended(t);
    }
    if (config.transition_probe) config.transition_probe(run, i, t, suspecting);
  };

  std::unique_ptr<fd::DetectorBank> bank;                 // batched engine
  std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;  // legacy
  if (config.use_detector_bank) {
    fd::DetectorBank::Config bank_config;
    bank_config.eta = config.eta;
    bank_config.monitored = kMonitored;
    bank_config.cold_start_timeout = config.cold_start_timeout;
    bank_config.name = "qos-bank";
    bank = std::make_unique<fd::DetectorBank>(simulator, bank_config);
    // One predictor group per distinct non-empty predictor_key; an empty
    // key never shares (the spec made no identical-behaviour promise).
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (const auto& spec : suite) {
      std::size_t group;
      const auto it = spec.predictor_key.empty()
                          ? group_by_key.end()
                          : group_by_key.find(spec.predictor_key);
      if (it != group_by_key.end()) {
        group = it->second;
      } else {
        group = bank->add_group(spec.make_predictor());
        if (!spec.predictor_key.empty()) {
          group_by_key.emplace(spec.predictor_key, group);
        }
      }
      bank->add_lane(spec.name, group, spec.make_margin());
    }
    bank->set_observer(
        [&on_transition](std::size_t lane, TimePoint t, bool suspecting) {
          on_transition(lane, t, suspecting);
        });
    monitor.attach_unowned(mux, *bank);
  } else {
    detectors.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      fd::FreshnessDetector::Config fd_config;
      fd_config.eta = config.eta;
      fd_config.monitored = kMonitored;
      fd_config.cold_start_timeout = config.cold_start_timeout;
      fd_config.name = suite[i].name;
      auto detector = std::make_unique<fd::FreshnessDetector>(
          simulator, fd_config, suite[i].make_predictor(),
          suite[i].make_margin());
      detector->set_observer([&on_transition, i](TimePoint t, bool suspecting) {
        on_transition(i, t, suspecting);
      });
      monitor.attach_unowned(mux, *detector);
      detectors.push_back(std::move(detector));
    }
  }
  auto suspecting_count = [&bank, &detectors]() {
    if (bank != nullptr) return bank->suspecting_count();
    std::size_t n = 0;
    for (const auto& d : detectors) {
      if (d->suspecting()) ++n;
    }
    return n;
  };

  crash_layer.set_observer([&trackers](TimePoint t, bool crashed) {
    for (auto& tracker : trackers) {
      if (crashed) {
        tracker.process_crashed(t);
      } else {
        tracker.process_restored(t);
      }
    }
  });

  monitored.start();
  monitor.start();

  // Telemetry tick: a repeating virtual-time event that emits a status
  // line whenever enough *wall* time has passed. Virtual runs execute
  // thousands of simulated seconds per wall second, so the tick is cheap
  // and the wall-clock rate limiter in ProgressEmitter does the pacing.
  std::function<void()> progress_tick;
  if (progress != nullptr) {
    const Duration tick_every = config.eta * 5;
    progress_tick = [&, run] {
      std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
      // A tick that loses the race simply skips this line; another run's
      // tick just emitted one.
      if (lock.owns_lock() && progress->emitter.due()) {
        const std::size_t suspecting = suspecting_count();
        const std::size_t started =
            progress->runs_started.load(std::memory_order_relaxed);
        const std::size_t done =
            progress->runs_done.load(std::memory_order_relaxed);
        const auto& hb_stats = transport.link_stats(kMonitored, kMonitor);
        if (obs::enabled()) {
          // Aggregated, not per-run, so concurrent runs never fight over
          // the gauges: runs in flight and completed-run crash totals.
          obs::instruments().experiment_run.set(static_cast<double>(started));
          obs::instruments().fd_suspecting.set(
              static_cast<double>(suspecting));
          // Per-detector live QoS gauges: this run won the tick, so it
          // publishes its lane states wholesale and stamps source_run.
          for (std::size_t i = 0; i < progress->lanes.size(); ++i) {
            const LaneGauges& g = progress->lanes[i];
            const bool susp = bank != nullptr ? bank->lane_suspecting(i)
                                              : detectors[i]->suspecting();
            const double delta = bank != nullptr
                                     ? bank->lane_delta_ms(i)
                                     : detectors[i]->current_delta_ms();
            g.suspect->set(susp ? 1.0 : 0.0);
            g.timeout_ms->set(delta);
            g.mistakes->set(static_cast<double>(trackers[i].tm_stats().count()));
            g.detections->set(
                static_cast<double>(trackers[i].detection_count()));
            g.recent_td_ms->set(trackers[i].recent_td_ms());
            g.recent_tm_ms->set(trackers[i].recent_tm_ms());
          }
          if (progress->source_run != nullptr) {
            progress->source_run->set(static_cast<double>(run));
          }
          if (progress->timer_lag_ms != nullptr) {
            TimePoint deadline = TimePoint::max();
            if (bank != nullptr) {
              deadline = bank->next_timer_deadline();
            } else {
              for (const auto& d : detectors) {
                deadline = std::min(deadline, d->next_timer_deadline());
              }
            }
            progress->timer_lag_ms->set(
                deadline == TimePoint::max()
                    ? std::numeric_limits<double>::quiet_NaN()
                    : (deadline - simulator.now()).to_millis_double());
          }
          // Refresh this invocation's /runs row. Crashes count completed
          // runs plus the reporting run (other in-flight runs report on
          // their own winning ticks).
          obs::RunStatus st;
          st.id = config.run_id;
          st.verb = config.run_verb;
          st.suite = config.suite_label;
          st.runs_total = config.runs;
          st.runs_started = started;
          st.runs_done = done;
          st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                       crash_layer.crash_count();
          st.heartbeats_sent = hb_stats.sent;
          st.detectors = suite.size();
          st.suspecting = suspecting;
          st.sim_time_s = simulator.now().to_seconds_double();
          obs::RunRegistry::global().update(st);
        }
        progress->emitter.emit(
            "run %zu/%zu (%zu done) t=%.0fs cycles=%lld/%lld crashes=%llu "
            "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
            run + 1, config.runs, done,
            simulator.now().to_seconds_double(),
            static_cast<long long>(heartbeater.cycles_sent()),
            static_cast<long long>(config.num_cycles),
            static_cast<unsigned long long>(crash_layer.crash_count()),
            static_cast<unsigned long long>(hb_stats.sent),
            static_cast<unsigned long long>(hb_stats.delivered),
            static_cast<unsigned long long>(hb_stats.sent -
                                            hb_stats.delivered),
            suspecting, suite.size());
      }
      simulator.schedule_after(tick_every, progress_tick);
    };
    simulator.schedule_after(tick_every, progress_tick);
  }

  simulator.run_until(run_end);

  for (auto& tracker : trackers) tracker.finalize(run_end);

  RunOutput out;
  out.crash_count = crash_layer.crash_count();
  const auto& hb_stats = transport.link_stats(kMonitored, kMonitor);
  out.hb_sent = hb_stats.sent;
  out.hb_delivered = hb_stats.delivered;
  if (chaos_net.has_value()) out.chaos = chaos_net->stats();
  if (bank != nullptr) {
    out.bank = bank->counters();
  } else {
    for (const auto& d : detectors) out.bank.add(d->counters());
  }
  out.trackers = std::move(trackers);

  if (progress != nullptr) {
    progress->runs_done.fetch_add(1, std::memory_order_relaxed);
    progress->crashes_done.fetch_add(out.crash_count,
                                     std::memory_order_relaxed);
  }
  FDQOS_LOG_INFO("qos run %zu/%zu: %llu crashes", run + 1, config.runs,
                 static_cast<unsigned long long>(out.crash_count));
  return out;
}

// ---------------------------------------------------------------------------
// LP-partitioned engine (SimEngine::kLp; sim/parallel_simulator.hpp and
// docs/pdes.md).
//
// Partition per run: LP0 owns the whole sender stack — heartbeater, crash
// injector, fault wrappers and every link RNG draw — and LPs 1..lps-1 each
// own a shard of the detector suite behind their own MultiPlexer. The only
// cross-LP channel is heartbeat delivery LP0→shard, whose lookahead is the
// link's minimum one-way delay, so shards run concurrently with the sender
// up to one delay floor ahead.
//
// QosTrackers are pure folds over timestamped records, so instead of
// notifying them live across LPs (which would need zero-lookahead channels
// and serialize everything), each shard records its (lane, t, suspecting)
// transitions and LP0 records the (t, crashed) ground truth; both replay
// into the trackers after the run. Trackers are per-lane, so cross-lane
// order is irrelevant and the replay is deterministic for every lps,
// lp_jobs and machine — byte-identical reports.

// Suspect transition captured on a shard LP (chronological per shard).
struct TransitionRecord {
  std::size_t lane;  // global suite index
  TimePoint t;
  bool suspecting;
};

struct CrashRecord {
  TimePoint t;
  bool crashed;
};

// Greedy least-loaded assignment of predictor groups to shards: groups in
// creation order, each to the shard with the fewest lanes so far (ties →
// lowest shard id). A pure function of the suite, so the partition never
// depends on jobs, timing or machine.
std::vector<std::size_t> partition_groups(
    const std::vector<std::size_t>& group_lanes, std::size_t shard_count) {
  std::vector<std::size_t> shard_of_group(group_lanes.size());
  std::vector<std::size_t> load(shard_count, 0);
  for (std::size_t g = 0; g < group_lanes.size(); ++g) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_group[g] = best;
    load[best] += group_lanes[g];
  }
  return shard_of_group;
}

RunOutput run_one_lp(const QosExperimentConfig& config,
                     const std::vector<fd::FdSpec>& suite,
                     const std::shared_ptr<const std::vector<Duration>>& trace,
                     const std::shared_ptr<const faultx::FaultSchedule>& faults,
                     std::size_t run, const Rng& base_rng, TimePoint run_end,
                     ProgressState* progress, std::size_t lp_jobs) {
  Rng run_rng = base_rng.fork(run);
  if (progress != nullptr) {
    progress->runs_started.fetch_add(1, std::memory_order_relaxed);
  }

  const std::size_t lps = config.lps == 0 ? 1 : config.lps;
  // lps = 1 keeps sender and detectors on one LP (the PDES baseline);
  // otherwise LP0 sends and every other LP holds one detector shard.
  const std::size_t shard_count = lps >= 2 ? lps - 1 : 1;
  const auto shard_lp = [lps](std::size_t s) { return lps >= 2 ? 1 + s : s; };

  sim::ParallelSimulator::Options po;
  po.lps = lps;
  po.jobs = lp_jobs;
  // One LP cannot backlog cross-LP mail, so the window cap buys nothing:
  // run the whole horizon as a single window (the PDES baseline then pays
  // no per-round coordination at all).
  if (lps < 2) po.max_window = Duration::zero();
  po.roles.push_back("sender");
  for (std::size_t i = 1; i < lps; ++i) po.roles.push_back("detectors");
  sim::ParallelSimulator psim(std::move(po));
  sim::Lp& sender_lp = psim.lp(0);

  net::LpSenderTransport transport(psim, 0, run_rng.fork("net"));
  transport.set_link(kMonitored, kMonitor,
                     make_link_config(config, trace, faults, run));

  // Transport-level faults wrap only the monitored node's view, exactly as
  // in the sequential engine; every fault draw stays on the sender LP.
  std::optional<faultx::FaultyTransport> chaos_net;
  net::Transport* monitored_net = &transport;
  if (faults != nullptr) {
    chaos_net.emplace(transport, faults, run_rng.fork("faultx"));
    monitored_net = &*chaos_net;
  }

  runtime::ProcessNode monitored(*monitored_net, kMonitored);
  auto& crash_layer = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      sender_lp, runtime::SimCrashLayer::Config{config.mttc, config.ttr},
      run_rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb_config;
  hb_config.eta = config.eta;
  hb_config.self = kMonitored;
  hb_config.monitor = kMonitor;
  hb_config.max_cycles = config.num_cycles;
  auto& heartbeater = monitored.push(
      std::make_unique<runtime::HeartbeaterLayer>(sender_lp, hb_config));

  // lps = 1 keeps every layer on one LP, so observer callbacks already
  // fire in global simulation order — trackers update inline, exactly like
  // the sequential engine, and the record/merge machinery below is skipped
  // (the PDES baseline then costs what seq costs). Multi-LP runs defer.
  const bool single_lp = lps < 2;
  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  std::vector<fd::QosTracker> trackers;
  trackers.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    trackers.emplace_back(warmup_end);
  }

  // Ground-truth crash toggles: applied inline on the single-LP layout,
  // recorded on LP0 and replayed after the run otherwise.
  std::vector<CrashRecord> crash_records;
  if (single_lp) {
    crash_layer.set_observer([&trackers](TimePoint t, bool crashed) {
      for (auto& tracker : trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
    });
  } else {
    crash_layer.set_observer([&crash_records](TimePoint t, bool crashed) {
      crash_records.push_back({t, crashed});
    });
  }

  // Partition the suite, predictor groups kept whole (a shared predictor
  // must see one arrival stream on one LP). Group ids replicate run_one's
  // first-seen-key order; the legacy engine shares nothing, so every lane
  // is its own group.
  std::vector<std::size_t> group_of(suite.size());
  std::vector<std::size_t> group_lanes;
  if (config.use_detector_bank) {
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const auto& key = suite[i].predictor_key;
      const auto it =
          key.empty() ? group_by_key.end() : group_by_key.find(key);
      if (it != group_by_key.end()) {
        group_of[i] = it->second;
      } else {
        group_of[i] = group_lanes.size();
        group_lanes.push_back(0);
        if (!key.empty()) group_by_key.emplace(key, group_of[i]);
      }
      ++group_lanes[group_of[i]];
    }
  } else {
    group_lanes.assign(suite.size(), 1);
    for (std::size_t i = 0; i < suite.size(); ++i) group_of[i] = i;
  }
  // More shards than predictor groups would leave some with a zero-lane
  // bank (DetectorBank requires width > 0): cap the shard count at the
  // group count — the surplus LPs simply stay idle for the whole run.
  const std::size_t active_shards = std::min(
      shard_count, std::max<std::size_t>(group_lanes.size(), 1));
  const std::vector<std::size_t> shard_of_group =
      partition_groups(group_lanes, active_shards);

  struct Shard {
    std::unique_ptr<net::LpShardTransport> transport;
    std::unique_ptr<runtime::ProcessNode> node;
    runtime::MultiPlexerLayer* mux = nullptr;  // owned by node
    std::unique_ptr<fd::DetectorBank> bank;
    std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;  // legacy
    std::vector<std::size_t> local_to_global;  // bank lane → suite index
    std::vector<TransitionRecord> transitions;
  };
  std::vector<Shard> shards(active_shards);
  // Live "how many lanes suspect right now" for the progress tick; shard
  // observers update it from their own LP threads.
  std::atomic<std::size_t> suspecting_now{0};

  for (std::size_t s = 0; s < active_shards; ++s) {
    Shard& shard = shards[s];
    shard.transport =
        std::make_unique<net::LpShardTransport>(psim, shard_lp(s));
    transport.add_shard(kMonitor, *shard.transport);
    shard.node =
        std::make_unique<runtime::ProcessNode>(*shard.transport, kMonitor);
    shard.mux =
        &shard.node->push(std::make_unique<runtime::MultiPlexerLayer>());

    Shard* sp = &shard;
    if (config.use_detector_bank) {
      fd::DetectorBank::Config bank_config;
      bank_config.eta = config.eta;
      bank_config.monitored = kMonitored;
      bank_config.cold_start_timeout = config.cold_start_timeout;
      bank_config.name = "qos-bank";
      shard.bank =
          std::make_unique<fd::DetectorBank>(psim.lp(shard_lp(s)), bank_config);
      // Suite order within the shard: the first lane of a group here is
      // also the group's globally-first spec (groups are never split), so
      // predictor construction matches run_one exactly.
      std::unordered_map<std::size_t, std::size_t> local_group;
      for (std::size_t i = 0; i < suite.size(); ++i) {
        if (shard_of_group[group_of[i]] != s) continue;
        std::size_t lg;
        const auto it = local_group.find(group_of[i]);
        if (it != local_group.end()) {
          lg = it->second;
        } else {
          lg = shard.bank->add_group(suite[i].make_predictor());
          local_group.emplace(group_of[i], lg);
        }
        shard.bank->add_lane(suite[i].name, lg, suite[i].make_margin());
        shard.local_to_global.push_back(i);
      }
      if (single_lp) {
        shard.bank->set_observer([sp, &trackers, &config, run,
                                  &suspecting_now](std::size_t lane,
                                                   TimePoint t, bool susp) {
          const std::size_t i = sp->local_to_global[lane];
          if (susp) {
            trackers[i].suspect_started(t);
            suspecting_now.fetch_add(1, std::memory_order_relaxed);
          } else {
            trackers[i].suspect_ended(t);
            suspecting_now.fetch_sub(1, std::memory_order_relaxed);
          }
          if (config.transition_probe) {
            config.transition_probe(run, i, t, susp);
          }
        });
      } else {
        shard.bank->set_observer(
            [sp, &suspecting_now](std::size_t lane, TimePoint t, bool susp) {
              sp->transitions.push_back({sp->local_to_global[lane], t, susp});
              if (susp) {
                suspecting_now.fetch_add(1, std::memory_order_relaxed);
              } else {
                suspecting_now.fetch_sub(1, std::memory_order_relaxed);
              }
            });
      }
      shard.node->attach_unowned(*shard.mux, *shard.bank);
    } else {
      for (std::size_t i = 0; i < suite.size(); ++i) {
        if (shard_of_group[group_of[i]] != s) continue;
        fd::FreshnessDetector::Config fd_config;
        fd_config.eta = config.eta;
        fd_config.monitored = kMonitored;
        fd_config.cold_start_timeout = config.cold_start_timeout;
        fd_config.name = suite[i].name;
        auto detector = std::make_unique<fd::FreshnessDetector>(
            psim.lp(shard_lp(s)), fd_config, suite[i].make_predictor(),
            suite[i].make_margin());
        if (single_lp) {
          detector->set_observer([&trackers, &config, run, i,
                                  &suspecting_now](TimePoint t, bool susp) {
            if (susp) {
              trackers[i].suspect_started(t);
              suspecting_now.fetch_add(1, std::memory_order_relaxed);
            } else {
              trackers[i].suspect_ended(t);
              suspecting_now.fetch_sub(1, std::memory_order_relaxed);
            }
            if (config.transition_probe) {
              config.transition_probe(run, i, t, susp);
            }
          });
        } else {
          detector->set_observer(
              [sp, i, &suspecting_now](TimePoint t, bool susp) {
                sp->transitions.push_back({i, t, susp});
                if (susp) {
                  suspecting_now.fetch_add(1, std::memory_order_relaxed);
                } else {
                  suspecting_now.fetch_sub(1, std::memory_order_relaxed);
                }
              });
        }
        shard.node->attach_unowned(*shard.mux, *detector);
        shard.detectors.push_back(std::move(detector));
      }
    }
  }

  // The one cross-LP channel: heartbeat delivery. Its lookahead is the
  // link's hard delay floor, already shrunk by chaos clock jumps
  // (FaultyDelay::min_delay) and zero for unconfigured/floorless links —
  // the coordinator's stall rule keeps even that case correct.
  if (lps >= 2) {
    const Duration lookahead =
        transport.link_lookahead(kMonitored, kMonitor);
    for (std::size_t s = 0; s < active_shards; ++s) {
      psim.set_lookahead(0, shard_lp(s), lookahead);
    }
  }

  monitored.start();
  for (auto& shard : shards) shard.node->start();

  // Reduced LP-mode telemetry tick on the sender LP: mid-run shard state
  // (per-lane gauges, timer deadlines) belongs to other LPs, so the tick
  // publishes only sender-local counts and the shard-maintained atomic
  // suspecting count. See docs/pdes.md.
  std::function<void()> progress_tick;
  if (progress != nullptr) {
    const Duration tick_every = config.eta * 5;
    progress_tick = [&, run] {
      std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
      if (lock.owns_lock() && progress->emitter.due()) {
        const std::size_t suspecting =
            suspecting_now.load(std::memory_order_relaxed);
        const std::size_t started =
            progress->runs_started.load(std::memory_order_relaxed);
        const std::size_t done =
            progress->runs_done.load(std::memory_order_relaxed);
        const auto hb_stats = transport.link_stats(kMonitored, kMonitor);
        if (obs::enabled()) {
          obs::instruments().experiment_run.set(static_cast<double>(started));
          obs::instruments().fd_suspecting.set(
              static_cast<double>(suspecting));
          obs::RunStatus st;
          st.id = config.run_id;
          st.verb = config.run_verb;
          st.suite = config.suite_label;
          st.runs_total = config.runs;
          st.runs_started = started;
          st.runs_done = done;
          st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                       crash_layer.crash_count();
          st.heartbeats_sent = hb_stats.sent;
          st.detectors = suite.size();
          st.suspecting = suspecting;
          st.sim_time_s = sender_lp.now().to_seconds_double();
          obs::RunRegistry::global().update(st);
        }
        progress->emitter.emit(
            "run %zu/%zu (%zu done) t=%.0fs cycles=%lld/%lld crashes=%llu "
            "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
            run + 1, config.runs, done, sender_lp.now().to_seconds_double(),
            static_cast<long long>(heartbeater.cycles_sent()),
            static_cast<long long>(config.num_cycles),
            static_cast<unsigned long long>(crash_layer.crash_count()),
            static_cast<unsigned long long>(hb_stats.sent),
            static_cast<unsigned long long>(hb_stats.delivered),
            static_cast<unsigned long long>(hb_stats.sent -
                                            hb_stats.delivered),
            suspecting, suite.size());
      }
      sender_lp.schedule_after(tick_every, progress_tick);
    };
    sender_lp.schedule_after(tick_every, progress_tick);
  }

  psim.run_until(run_end);

  // Multi-LP: replay the recorded streams into the trackers. A lane's
  // transitions live on exactly one shard, appended in that LP's execution
  // order — chronological — so a per-lane two-stream merge with the crash
  // toggles reproduces the live update sequence. Equal-instant ties replay
  // crash-first (fixed, engine-independent order; the determinism suite
  // pins the resulting bytes). Single-LP runs updated inline above.
  if (!single_lp) {
    std::vector<std::vector<const TransitionRecord*>> by_lane(suite.size());
    for (const auto& shard : shards) {
      for (const auto& rec : shard.transitions) {
        by_lane[rec.lane].push_back(&rec);
      }
    }
    for (std::size_t i = 0; i < suite.size(); ++i) {
      fd::QosTracker& tracker = trackers[i];
      const auto& lane = by_lane[i];
      std::size_t c = 0;
      std::size_t t = 0;
      while (c < crash_records.size() || t < lane.size()) {
        const bool take_crash =
            t >= lane.size() ||
            (c < crash_records.size() && crash_records[c].t <= lane[t]->t);
        if (take_crash) {
          if (crash_records[c].crashed) {
            tracker.process_crashed(crash_records[c].t);
          } else {
            tracker.process_restored(crash_records[c].t);
          }
          ++c;
        } else {
          if (lane[t]->suspecting) {
            tracker.suspect_started(lane[t]->t);
          } else {
            tracker.suspect_ended(lane[t]->t);
          }
          if (config.transition_probe) {
            // Note: under this layout the probe fires post-run, grouped by
            // lane (time-ordered within a lane), not globally interleaved.
            config.transition_probe(run, i, lane[t]->t, lane[t]->suspecting);
          }
          ++t;
        }
      }
    }
  }
  for (auto& tracker : trackers) tracker.finalize(run_end);

  RunOutput out;
  out.crash_count = crash_layer.crash_count();
  const auto hb_stats = transport.link_stats(kMonitored, kMonitor);
  out.hb_sent = hb_stats.sent;
  out.hb_delivered = hb_stats.delivered;
  if (chaos_net.has_value()) out.chaos = chaos_net->stats();
  for (const auto& shard : shards) {
    if (shard.bank != nullptr) out.bank.add(shard.bank->counters());
    for (const auto& d : shard.detectors) out.bank.add(d->counters());
  }
  out.sim = psim.stats();
  out.trackers = std::move(trackers);

  if (progress != nullptr) {
    progress->runs_done.fetch_add(1, std::memory_order_relaxed);
    progress->crashes_done.fetch_add(out.crash_count,
                                     std::memory_order_relaxed);
  }
  FDQOS_LOG_INFO(
      "qos run %zu/%zu (lp engine, %zu lps): %llu crashes", run + 1,
      config.runs, lps, static_cast<unsigned long long>(out.crash_count));
  return out;
}

// ---------------------------------------------------------------------------
// Fleet engine (fd::FleetBank; docs/fleet.md).
//
// `endpoints` independent monitored processes, each with its own link,
// crash injector and full detector suite, sharded into contiguous blocks.
// Each (run, shard) unit owns one simulator (one LP under kLp), one
// FleetBank and the block's endpoint stacks. Endpoint e's whole stochastic
// tree forks from fleet_endpoint_seed(seed, e) with the same fork names as
// run_one, and every endpoint uses the local node-id pair (0, 1) on its
// own transport — so endpoint e of any fleet run is bit-for-bit a
// standalone run seeded with its fleet seed, regardless of M, the shard
// count, jobs or engine. The equivalence suite (`ctest -L fleet`) pins it.

// One monitored endpoint's stack inside a shard.
struct FleetEndpoint {
  std::unique_ptr<net::SimTransport> transport;
  std::optional<faultx::FaultyTransport> chaos_net;
  std::unique_ptr<runtime::ProcessNode> monitored;
  std::unique_ptr<runtime::ProcessNode> monitor;
  runtime::SimCrashLayer* crash = nullptr;           // owned by `monitored`
  runtime::HeartbeaterLayer* heartbeater = nullptr;  // owned by `monitored`
  runtime::MultiPlexerLayer* mux = nullptr;          // owned by `monitor`
  fd::DetectorBank* bank = nullptr;  // owned by the fleet's arena
  std::vector<fd::QosTracker> trackers;  // index-aligned with the suite
};

struct FleetShardContext {
  std::unique_ptr<fd::FleetBank> fleet;
  // deque: endpoint addresses must stay stable while later endpoints are
  // appended (bank/crash observers capture them).
  std::deque<FleetEndpoint> endpoints;
  std::function<void()> progress_tick;  // keeps the tick closure alive
};

// Everything one (run, shard) unit produces.
struct FleetShardOutput {
  std::vector<std::vector<fd::QosTracker>> trackers;  // [local ep][lane]
  std::vector<std::uint64_t> crash_count;             // per local endpoint
  std::vector<std::uint64_t> hb_sent;
  std::vector<std::uint64_t> hb_delivered;
  faultx::FaultyTransport::Stats chaos;  // summed over the block
  fd::DetectorBank::Counters bank;       // summed member counters
  fd::FleetBank::Counters fleet;         // shard-level engine counters
  sim::ParallelSimulator::Stats sim;     // shard 0 of a kLp run only
};

// Shard s of S owns endpoints [begin(s), begin(s+1)): contiguous blocks,
// remainders spread over the first shards. A pure function of (M, S), so
// the endpoint→shard map never depends on jobs or machine.
std::size_t fleet_shard_begin(std::size_t endpoints, std::size_t shards,
                              std::size_t s) {
  const std::size_t base = endpoints / shards;
  const std::size_t rem = endpoints % shards;
  return s * base + std::min(s, rem);
}

void build_fleet_shard(
    sim::Simulator& simulator, const QosExperimentConfig& config,
    const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t ep_begin, std::size_t ep_end,
    FleetShardContext& ctx) {
  fd::FleetBank::Config fleet_config;
  fleet_config.eta = config.eta;
  fleet_config.cold_start_timeout = config.cold_start_timeout;
  fleet_config.name = "qos-fleet";
  fleet_config.expected_endpoints = ep_end - ep_begin;
  ctx.fleet = std::make_unique<fd::FleetBank>(simulator, fleet_config);

  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  for (std::size_t e = ep_begin; e < ep_end; ++e) {
    FleetEndpoint& ep = ctx.endpoints.emplace_back();
    // The endpoint's RNG tree is rooted exactly like a standalone run
    // seeded with its fleet seed; every named fork below matches run_one.
    Rng ep_rng = Rng(fleet_endpoint_seed(config.seed, e)).fork(run);
    ep.transport =
        std::make_unique<net::SimTransport>(simulator, ep_rng.fork("net"));
    ep.transport->set_link(kMonitored, kMonitor,
                           make_link_config(config, trace, faults, run));
    net::Transport* monitored_net = ep.transport.get();
    if (faults != nullptr) {
      ep.chaos_net.emplace(*ep.transport, faults, ep_rng.fork("faultx"));
      monitored_net = &*ep.chaos_net;
    }

    ep.monitored =
        std::make_unique<runtime::ProcessNode>(*monitored_net, kMonitored);
    ep.crash = &ep.monitored->push(std::make_unique<runtime::SimCrashLayer>(
        simulator, runtime::SimCrashLayer::Config{config.mttc, config.ttr},
        ep_rng.fork("crash")));
    runtime::HeartbeaterLayer::Config hb_config;
    hb_config.eta = config.eta;
    hb_config.self = kMonitored;
    hb_config.monitor = kMonitor;
    hb_config.max_cycles = config.num_cycles;
    ep.heartbeater = &ep.monitored->push(
        std::make_unique<runtime::HeartbeaterLayer>(simulator, hb_config));

    ep.monitor =
        std::make_unique<runtime::ProcessNode>(*ep.transport, kMonitor);
    ep.mux = &ep.monitor->push(std::make_unique<runtime::MultiPlexerLayer>());

    // Member bank: the same group/lane assembly as run_one. Per-node
    // attachment — the member sits on its endpoint's own stack, so the
    // shared monitored id never needs fleet routing.
    fd::DetectorBank& bank = ctx.fleet->add_member(kMonitored, "qos-bank");
    bank.reserve_lanes(suite.size());
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (const auto& spec : suite) {
      std::size_t group;
      const auto it = spec.predictor_key.empty()
                          ? group_by_key.end()
                          : group_by_key.find(spec.predictor_key);
      if (it != group_by_key.end()) {
        group = it->second;
      } else {
        group = bank.add_group(spec.make_predictor());
        if (!spec.predictor_key.empty()) {
          group_by_key.emplace(spec.predictor_key, group);
        }
      }
      bank.add_lane(spec.name, group, spec.make_margin());
    }
    ep.bank = &bank;

    ep.trackers.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ep.trackers.emplace_back(warmup_end);
    }
    FleetEndpoint* epp = &ep;
    const std::size_t width = suite.size();
    bank.set_observer([epp, &config, run, e, width](std::size_t lane,
                                                    TimePoint t, bool susp) {
      if (susp) {
        epp->trackers[lane].suspect_started(t);
      } else {
        epp->trackers[lane].suspect_ended(t);
      }
      if (config.transition_probe) {
        config.transition_probe(run, e * width + lane, t, susp);
      }
    });
    ep.crash->set_observer([epp](TimePoint t, bool crashed) {
      for (auto& tracker : epp->trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
    });
    ep.monitor->attach_unowned(*ep.mux, bank);

    // Start order within an endpoint matches run_one (monitored, then
    // monitor — which runs the member's begin_cycle(0) inline).
    // Cross-endpoint interleaving is irrelevant: endpoints share no state.
    ep.monitored->start();
    ep.monitor->start();
  }
  // The shared cycle tick is scheduled after every member computed cycle 0
  // and before the simulator runs, so at each σ_k the begin-cycle work
  // still precedes any same-instant heartbeat send — every member keeps
  // its standalone event order.
  ctx.fleet->start();
}

FleetShardOutput drain_fleet_shard(FleetShardContext& ctx, TimePoint run_end) {
  FleetShardOutput out;
  out.fleet = ctx.fleet->counters();
  out.bank = ctx.fleet->member_counters();
  out.trackers.reserve(ctx.endpoints.size());
  out.crash_count.reserve(ctx.endpoints.size());
  out.hb_sent.reserve(ctx.endpoints.size());
  out.hb_delivered.reserve(ctx.endpoints.size());
  for (FleetEndpoint& ep : ctx.endpoints) {
    for (auto& tracker : ep.trackers) tracker.finalize(run_end);
    out.crash_count.push_back(ep.crash->crash_count());
    const auto& hb = ep.transport->link_stats(kMonitored, kMonitor);
    out.hb_sent.push_back(hb.sent);
    out.hb_delivered.push_back(hb.delivered);
    // Per-node attachment delivers heartbeats straight into each member
    // (never through the fleet's routed path), so the shard's heartbeat
    // counter is accounted here from the links — fdqos_fleet_heartbeats_-
    // total stays meaningful in experiment mode, not just raw-coordinator.
    out.fleet.heartbeats += hb.delivered;
    if (ep.chaos_net.has_value()) {
      const auto stats = ep.chaos_net->stats();
      out.chaos.sent += stats.sent;
      out.chaos.fault_dropped += stats.fault_dropped;
      out.chaos.duplicated += stats.duplicated;
    }
    out.trackers.push_back(std::move(ep.trackers));
  }
  return out;
}

// Fleet telemetry tick, installed on one shard per invocation (run 0 is
// usually first but any shard 0 may win the emitter's rate limiter). A
// shard can hold thousands of endpoint stacks, so the tick publishes
// shard-aggregate numbers — the emitted crash/heartbeat figures are the
// reporting shard's own block, a sample, not a fleet total; the final
// report and /runs row carry the totals.
void install_fleet_progress(const QosExperimentConfig& config,
                            ProgressState* progress, FleetShardContext& ctx,
                            sim::Simulator& simulator, std::size_t run,
                            std::size_t suite_width, std::size_t ep_begin) {
  const Duration tick_every = config.eta * 5;
  ctx.progress_tick = [&config, progress, &ctx, &simulator, run, suite_width,
                       ep_begin, tick_every] {
    std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
    if (lock.owns_lock() && progress->emitter.due()) {
      const std::size_t suspecting = ctx.fleet->suspecting_count();
      const std::size_t started =
          progress->runs_started.load(std::memory_order_relaxed);
      const std::size_t done =
          progress->runs_done.load(std::memory_order_relaxed);
      std::uint64_t sent = 0;
      std::uint64_t delivered = 0;
      std::uint64_t crashes = 0;
      for (const FleetEndpoint& ep : ctx.endpoints) {
        const auto& hb = ep.transport->link_stats(kMonitored, kMonitor);
        sent += hb.sent;
        delivered += hb.delivered;
        crashes += ep.crash->crash_count();
      }
      if (obs::enabled()) {
        obs::instruments().experiment_run.set(static_cast<double>(started));
        obs::instruments().fd_suspecting.set(static_cast<double>(suspecting));
        obs::RunStatus st;
        st.id = config.run_id;
        st.verb = config.run_verb;
        st.suite = config.suite_label;
        st.runs_total = config.runs;
        st.runs_started = started;
        st.runs_done = done;
        st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                     crashes;
        st.heartbeats_sent = sent;
        st.detectors = suite_width * config.endpoints;
        st.suspecting = suspecting;
        st.sim_time_s = simulator.now().to_seconds_double();
        obs::RunRegistry::global().update(st);
      }
      progress->emitter.emit(
          "run %zu/%zu (%zu done) t=%.0fs fleet ep[%zu..%zu): crashes=%llu "
          "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
          run + 1, config.runs, done, simulator.now().to_seconds_double(),
          ep_begin, ep_begin + ctx.endpoints.size(),
          static_cast<unsigned long long>(crashes),
          static_cast<unsigned long long>(sent),
          static_cast<unsigned long long>(delivered),
          static_cast<unsigned long long>(sent - delivered), suspecting,
          ctx.fleet->total_lanes());
    }
    simulator.schedule_after(tick_every, ctx.progress_tick);
  };
  simulator.schedule_after(tick_every, ctx.progress_tick);
}

// One (run, shard) unit under the sequential engine.
FleetShardOutput run_fleet_shard(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, std::size_t shard, TimePoint run_end,
    ProgressState* progress) {
  const std::size_t ep_begin = fleet_shard_begin(config.endpoints, shards, shard);
  const std::size_t ep_end =
      fleet_shard_begin(config.endpoints, shards, shard + 1);
  sim::Simulator simulator;
  FleetShardContext ctx;
  build_fleet_shard(simulator, config, suite, trace, faults, run, ep_begin,
                    ep_end, ctx);
  if (progress != nullptr && shard == 0) {
    install_fleet_progress(config, progress, ctx, simulator, run, suite.size(),
                           ep_begin);
  }
  simulator.run_until(run_end);
  return drain_fleet_shard(ctx, run_end);
}

// One whole run under the LP engine: endpoint shards map 1:1 onto LPs of a
// conservative parallel simulator. Shards share no state, so there are no
// cross-LP channels at all; with the window cap off every LP runs the
// whole horizon in its first window (coordination-free, and trivially
// byte-identical to the sequential shards).
std::vector<FleetShardOutput> run_fleet_run_lp(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, TimePoint run_end,
    ProgressState* progress, std::size_t lp_jobs) {
  sim::ParallelSimulator::Options po;
  po.lps = shards;
  po.jobs = lp_jobs;
  po.max_window = Duration::zero();
  po.roles.assign(shards, "fleet");
  sim::ParallelSimulator psim(std::move(po));

  std::vector<FleetShardContext> ctxs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    build_fleet_shard(psim.lp(s), config, suite, trace, faults, run,
                      fleet_shard_begin(config.endpoints, shards, s),
                      fleet_shard_begin(config.endpoints, shards, s + 1),
                      ctxs[s]);
  }
  if (progress != nullptr) {
    install_fleet_progress(config, progress, ctxs[0], psim.lp(0), run,
                           suite.size(), 0);
  }
  psim.run_until(run_end);

  std::vector<FleetShardOutput> outs;
  outs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    outs.push_back(drain_fleet_shard(ctxs[s], run_end));
  }
  outs[0].sim = psim.stats();
  return outs;
}

// The whole fleet experiment: run the (run, shard) grid, then reduce in
// run-major endpoint-major order into the report. For M = 1 the merge
// sequence collapses to exactly the single-endpoint loop.
void run_fleet_experiment(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    TimePoint run_end, ProgressState* progress, QosReport& report) {
  const std::size_t shards = resolve_fleet_shards(config);
  const std::size_t M = config.endpoints;

  // Register the fdqos_fleet_* families before any run starts, so a
  // mid-run scrape already sees them; the shard counters are flushed from
  // the reduction totals at the end (per-invocation artifacts, not live
  // increments — the live view is the /runs row and the gauges).
  std::vector<obs::Counter*> shard_heartbeats(shards, nullptr);
  std::vector<obs::Counter*> shard_timer_events(shards, nullptr);
  std::vector<obs::Counter*> shard_coalesced(shards, nullptr);
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    const obs::Labels run_labels = {{"run", config.run_id},
                                    {"suite", config.suite_label}};
    reg.gauge("fdqos_fleet_endpoints",
              "Monitored endpoints in the fleet experiment", run_labels)
        .set(static_cast<double>(M));
    reg.gauge("fdqos_fleet_shards",
              "FleetBank shards the endpoints are split over", run_labels)
        .set(static_cast<double>(shards));
    for (std::size_t s = 0; s < shards; ++s) {
      obs::Labels labels = run_labels;
      labels.emplace_back("shard", std::to_string(s));
      shard_heartbeats[s] =
          &reg.counter("fdqos_fleet_heartbeats_total",
                       "Heartbeats ingested by the fleet shard, summed over "
                       "runs",
                       labels);
      shard_timer_events[s] =
          &reg.counter("fdqos_fleet_timer_events_total",
                       "Shard-level armed timer events fired, summed over "
                       "runs",
                       labels);
      shard_coalesced[s] =
          &reg.counter("fdqos_fleet_coalesced_events_total",
                       "Member simulator events avoided by shard-level "
                       "coalescing, summed over runs",
                       labels);
    }
  }

  std::vector<std::vector<FleetShardOutput>> outputs(config.runs);
  for (auto& per_run : outputs) per_run.resize(shards);
  // A run is "done" (for telemetry) when its last shard drains.
  std::vector<std::atomic<std::size_t>> shards_left(config.runs);
  for (auto& left : shards_left) left.store(shards, std::memory_order_relaxed);
  auto shard_done = [&](std::size_t run, const FleetShardOutput& out) {
    if (progress == nullptr) return;
    std::uint64_t crashes = 0;
    for (const std::uint64_t c : out.crash_count) crashes += c;
    progress->crashes_done.fetch_add(crashes, std::memory_order_relaxed);
    if (shards_left[run].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      progress->runs_done.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (config.sim_engine == SimEngine::kLp) {
    // Outer pool over runs; each run's shards run as LPs of one parallel
    // simulator with lp_jobs workers (auto mode splits the hardware).
    const std::size_t jobs = std::min(
        config.jobs == 0 ? exec::default_jobs() : config.jobs, config.runs);
    const std::size_t lp_jobs =
        config.lp_jobs != 0
            ? config.lp_jobs
            : std::max<std::size_t>(1, exec::default_jobs() / jobs);
    exec::ThreadPool pool(jobs);
    pool.parallel_for(config.runs, [&](std::size_t run) {
      if (progress != nullptr) {
        progress->runs_started.fetch_add(1, std::memory_order_relaxed);
      }
      outputs[run] = run_fleet_run_lp(config, suite, trace, faults, run,
                                      shards, run_end, progress, lp_jobs);
      for (const auto& out : outputs[run]) shard_done(run, out);
    });
  } else {
    // Flattened (run, shard) grid on one pool: every unit is an
    // independent seeded simulation, reduced in fixed order below.
    const std::size_t units = config.runs * shards;
    const std::size_t jobs = std::min(
        config.jobs == 0 ? exec::default_jobs() : config.jobs, units);
    exec::ThreadPool pool(jobs);
    pool.parallel_for(units, [&](std::size_t unit) {
      const std::size_t run = unit / shards;
      const std::size_t shard = unit % shards;
      if (progress != nullptr && shard == 0) {
        progress->runs_started.fetch_add(1, std::memory_order_relaxed);
      }
      outputs[run][shard] = run_fleet_shard(config, suite, trace, faults, run,
                                            shards, shard, run_end, progress);
      shard_done(run, outputs[run][shard]);
    });
  }

  // Ordered reduction. Within a run, shards ascend and local endpoints
  // ascend within a shard, so endpoints merge in global index order.
  std::vector<Pooled> pooled(suite.size());
  std::vector<std::vector<Pooled>> pooled_ep(M,
                                             std::vector<Pooled>(suite.size()));
  report.endpoint_crashes.assign(M, 0);
  report.endpoint_hb_sent.assign(M, 0);
  report.endpoint_hb_delivered.assign(M, 0);
  for (std::size_t run = 0; run < config.runs; ++run) {
    for (std::size_t s = 0; s < shards; ++s) {
      const FleetShardOutput& out = outputs[run][s];
      const std::size_t ep_begin = fleet_shard_begin(M, shards, s);
      for (std::size_t le = 0; le < out.trackers.size(); ++le) {
        const std::size_t e = ep_begin + le;
        for (std::size_t i = 0; i < suite.size(); ++i) {
          merge_tracker(pooled[i], out.trackers[le][i]);
          merge_tracker(pooled_ep[e][i], out.trackers[le][i]);
        }
        report.total_crashes += out.crash_count[le];
        report.heartbeats_sent += out.hb_sent[le];
        report.heartbeats_delivered += out.hb_delivered[le];
        report.endpoint_crashes[e] += out.crash_count[le];
        report.endpoint_hb_sent[e] += out.hb_sent[le];
        report.endpoint_hb_delivered[e] += out.hb_delivered[le];
      }
      report.bank.add(out.bank);
      report.fleet.add(out.fleet);
      report.sim_rounds += out.sim.rounds;
      report.sim_stalls += out.sim.stalls;
      report.sim_cross_lp_messages += out.sim.cross_lp_messages;
      if (out.sim.rounds > 0) {
        report.sim_last_window_ms =
            out.sim.last_window == Duration::max()
                ? std::numeric_limits<double>::infinity()
                : out.sim.last_window.to_millis_double();
      }
      if (faults != nullptr) {
        report.chaos_dropped += out.chaos.fault_dropped;
        report.chaos_duplicated += out.chaos.duplicated;
      }
    }
    // One schedule overlays every run, as in the single-endpoint engines.
    if (faults != nullptr) report.chaos_fault_events += faults->event_count();
  }

  report.results = results_from_pooled(suite, pooled);
  report.endpoint_results.reserve(M);
  for (std::size_t e = 0; e < M; ++e) {
    report.endpoint_results.push_back(results_from_pooled(suite, pooled_ep[e]));
  }

  if (obs::enabled()) {
    for (std::size_t s = 0; s < shards; ++s) {
      fd::FleetBank::Counters total;
      for (std::size_t run = 0; run < config.runs; ++run) {
        total.add(outputs[run][s].fleet);
      }
      shard_heartbeats[s]->inc(total.heartbeats);
      shard_timer_events[s]->inc(total.timer_events);
      shard_coalesced[s]->inc(total.coalesced_events);
    }
  }
}

}  // namespace

QosReport run_qos_experiment(const QosExperimentConfig& original) {
  // Local copy: replay with the truncate policy may clamp num_cycles to
  // the trace length below, and the report echoes what actually ran.
  QosExperimentConfig config = original;
  FDQOS_REQUIRE(config.runs > 0);
  FDQOS_REQUIRE(config.num_cycles > 0);
  FDQOS_REQUIRE(config.endpoints > 0);

  const bool fleet_mode = config.endpoints > 1 || config.force_fleet_engine;
  if (fleet_mode) {
    // Fleet runs route every endpoint's suite through fd::FleetBank
    // members — there is no legacy-engine fleet — and the recording hub
    // shards by run index only, so M endpoint streams would collide.
    if (!config.use_detector_bank) {
      std::fprintf(stderr,
                   "fdqos: fleet mode (--endpoints > 1) requires the bank "
                   "engine\n");
      FDQOS_REQUIRE(!"fleet mode requires the detector bank engine");
    }
    if (config.record_hub != nullptr) {
      std::fprintf(stderr,
                   "fdqos: fleet mode cannot record traces (the recorder hub "
                   "shards by run index only)\n");
      FDQOS_REQUIRE(!"fleet mode is incompatible with record_hub");
    }
  }

  // Telemetry identity. Derived deterministically (never from wall clocks
  // or PIDs) so goldens and re-runs carry stable labels; derivation is
  // unconditional so the echoed report config is independent of whether
  // telemetry happens to be enabled.
  if (config.run_id.empty()) {
    config.run_id = config.run_verb + "-seed" + std::to_string(config.seed);
  }
  if (config.suite_label.empty()) {
    config.suite_label =
        config.chaos_scenario.empty() ? "paper" : config.chaos_scenario;
  }
  std::optional<obs::RunFinalizer> run_guard;
  if (obs::enabled()) {
    obs::set_run_context(config.run_id, config.suite_label);
    // Seed the /runs row before any work: a run that dies before its first
    // progress tick still appears, and the RAII guard marks the row
    // finished (and clears the context) on *every* exit path — including
    // an exception unwinding out of the run loop, which parallel_for
    // rethrows on this thread. tests/obs/run_registry_test.cpp pins this.
    obs::RunStatus st;
    st.id = config.run_id;
    st.verb = config.run_verb;
    st.suite = config.suite_label;
    st.runs_total = config.runs;
    obs::RunRegistry::global().update(st);
    run_guard.emplace(config.run_id);
  }

  // Load the replay trace once; every run shares the immutable data.
  std::shared_ptr<const wan::Trace> trace_data;
  std::shared_ptr<const std::vector<Duration>> trace;
  if (!config.trace_path.empty()) {
    wan::TraceLoadResult loaded = wan::load_trace(config.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "fdqos: cannot load trace: %s\n",
                   loaded.error.c_str());
      FDQOS_REQUIRE(!"trace load failed in run_qos_experiment");
    }
    trace_data = loaded.trace;
    // Aliasing share: the delay column lives inside the loaded Trace.
    trace = std::shared_ptr<const std::vector<Duration>>(trace_data,
                                                         &trace_data->delays);
    if (config.replay_policy == wan::ReplayPolicy::kTruncate &&
        static_cast<std::uint64_t>(config.num_cycles) > trace_data->size()) {
      // The experiment ends with the trace: every run replays a strict
      // prefix and no sample is ever re-read (wrap/extend opt out).
      FDQOS_LOG_INFO(
          "trace %s has %zu samples; truncating NumCycles %lld -> %zu",
          config.trace_path.c_str(), trace_data->size(),
          static_cast<long long>(config.num_cycles), trace_data->size());
      config.num_cycles = static_cast<std::int64_t>(trace_data->size());
    }
  }

  std::vector<fd::FdSpec> suite;
  if (config.include_paper_suite) {
    suite = fd::make_paper_suite(config.params);
  }
  if (config.include_constant_baseline) {
    auto baselines =
        fd::make_constant_margin_suite(config.baseline_margin_ms, config.params);
    for (auto& spec : baselines) suite.push_back(std::move(spec));
  }
  for (const auto& spec : config.extra_specs) suite.push_back(spec);
  FDQOS_REQUIRE(!suite.empty());

  // Names key results, figure cells and the bank's lanes; a duplicate (or
  // empty) name would silently alias two detectors. Reject loudly up front.
  std::unordered_set<std::string> seen_names;
  for (const auto& spec : suite) {
    if (spec.name.empty()) {
      std::fprintf(stderr,
                   "fdqos: qos suite contains a detector with an empty name "
                   "(predictor=%s margin=%s); every spec needs a unique "
                   "non-empty name\n",
                   spec.predictor_label.c_str(), spec.margin_label.c_str());
      FDQOS_REQUIRE(!"empty detector name in qos suite");
    }
    if (!seen_names.insert(spec.name).second) {
      std::fprintf(stderr,
                   "fdqos: duplicate detector name '%s' in qos suite "
                   "(extra_specs and the paper/baseline suites share one "
                   "namespace); names must be unique\n",
                   spec.name.c_str());
      FDQOS_REQUIRE(!"duplicate detector name in qos suite");
    }
  }

  QosReport report;
  report.config = config;

  const Rng base_rng(config.seed);
  const TimePoint run_end =
      TimePoint::origin() + config.eta * config.num_cycles + config.ttr +
      Duration::seconds(5);

  // Build the fault schedule once; every run overlays the same immutable
  // event timeline (per-run randomness lives in the wrapper models).
  std::shared_ptr<const faultx::FaultSchedule> faults;
  if (!config.chaos_scenario.empty()) {
    FDQOS_REQUIRE(faultx::is_scenario(config.chaos_scenario));
    faultx::ScenarioParams sp;
    sp.active_start = TimePoint::origin() + config.warmup;
    sp.horizon = run_end;
    faults = std::make_shared<const faultx::FaultSchedule>(
        faultx::make_scenario(config.chaos_scenario, sp));
  }

  std::unique_ptr<ProgressState> progress;
  if (config.progress_interval_s > 0.0) {
    obs::ProgressEmitter::Options opts;
    opts.interval_s = config.progress_interval_s;
    opts.prefix = "[fdqos " + config.run_verb + "]";
    opts.jsonl = config.progress_jsonl;
    opts.run_id = config.run_id;
    progress = std::make_unique<ProgressState>(std::move(opts));
    // Fleet runs can hold endpoints × suite lanes — far too many gauge
    // series; their ticks publish shard aggregates instead (see
    // install_fleet_progress), so the per-lane handles are skipped.
    if (obs::enabled() && !fleet_mode) {
      // Register the per-detector gauge handles once, up front; ticks then
      // touch only relaxed atomics. Labels carry (detector, run, suite) so
      // concurrent invocations in one process stay distinguishable.
      auto& reg = obs::Registry::global();
      const obs::Labels run_labels = {{"run", config.run_id},
                                      {"suite", config.suite_label}};
      progress->lanes.reserve(suite.size());
      for (const auto& spec : suite) {
        obs::Labels labels = run_labels;
        labels.emplace_back("detector", spec.name);
        LaneGauges g;
        g.suspect = &reg.gauge("fdqos_detector_suspect",
                               "1 while the detector suspects the monitored "
                               "process, 0 while it trusts it",
                               labels);
        g.timeout_ms = &reg.gauge("fdqos_detector_timeout_ms",
                                  "Current freshness timeout delta = "
                                  "prediction + safety margin, milliseconds",
                                  labels);
        g.mistakes = &reg.gauge("fdqos_detector_mistakes",
                                "Mistake (wrong suspicion) samples recorded "
                                "so far in the source run",
                                labels);
        g.detections = &reg.gauge("fdqos_detector_detections",
                                  "Crash detections recorded so far in the "
                                  "source run",
                                  labels);
        g.recent_td_ms = &reg.gauge("fdqos_detector_recent_td_ms",
                                    "EWMA (alpha=0.2) of recent detection "
                                    "times T_D, milliseconds; NaN before "
                                    "the first detection",
                                    labels);
        g.recent_tm_ms = &reg.gauge("fdqos_detector_recent_tm_ms",
                                    "EWMA (alpha=0.2) of recent mistake "
                                    "durations T_M, milliseconds; NaN "
                                    "before the first mistake",
                                    labels);
        progress->lanes.push_back(g);
      }
      progress->source_run = &reg.gauge(
          "fdqos_detector_source_run",
          "Run index whose state the per-detector gauges currently show",
          run_labels);
      progress->timer_lag_ms = &reg.gauge(
          "fdqos_freshness_timer_lag_ms",
          "Next armed freshness-timer deadline minus current virtual time "
          "in the source run, milliseconds; NaN while no timer is armed",
          run_labels);
    }
  }

  if (fleet_mode) {
    run_fleet_experiment(config, suite, trace, faults, run_end, progress.get(),
                         report);
  } else {
    // Runs are embarrassingly parallel: each forks its RNG from (seed, run)
    // and owns its whole simulator stack. Outputs land in a run-indexed
    // vector and are reduced below in run order, so the report bytes do not
    // depend on the jobs value or on scheduling.
    const std::size_t jobs = std::min(
        config.jobs == 0 ? exec::default_jobs() : config.jobs, config.runs);
    // LP workers nest inside run workers; auto mode splits the hardware
    // between the two levels so lp × jobs ≈ default_jobs().
    std::size_t lp_jobs = 1;
    if (config.sim_engine == SimEngine::kLp) {
      FDQOS_REQUIRE(config.lps > 0);
      lp_jobs = config.lp_jobs != 0
                    ? config.lp_jobs
                    : std::max<std::size_t>(1, exec::default_jobs() / jobs);
    }
    std::vector<RunOutput> outputs(config.runs);
    exec::ThreadPool pool(jobs);
    pool.parallel_for(config.runs, [&](std::size_t run) {
      outputs[run] =
          config.sim_engine == SimEngine::kLp
              ? run_one_lp(config, suite, trace, faults, run, base_rng,
                           run_end, progress.get(), lp_jobs)
              : run_one(config, suite, trace, faults, run, base_rng, run_end,
                        progress.get());
    });

    // Ordered reduction: identical merge sequence as the serial loop.
    std::vector<Pooled> pooled(suite.size());
    for (std::size_t run = 0; run < config.runs; ++run) {
      const RunOutput& out = outputs[run];
      for (std::size_t i = 0; i < suite.size(); ++i) {
        merge_tracker(pooled[i], out.trackers[i]);
      }
      report.total_crashes += out.crash_count;
      report.heartbeats_sent += out.hb_sent;
      report.heartbeats_delivered += out.hb_delivered;
      report.bank.add(out.bank);
      report.sim_rounds += out.sim.rounds;
      report.sim_stalls += out.sim.stalls;
      report.sim_cross_lp_messages += out.sim.cross_lp_messages;
      if (out.sim.rounds > 0) {
        report.sim_last_window_ms =
            out.sim.last_window == Duration::max()
                ? std::numeric_limits<double>::infinity()
                : out.sim.last_window.to_millis_double();
      }
      if (faults != nullptr) {
        report.chaos_fault_events += faults->event_count();
        report.chaos_dropped += out.chaos.fault_dropped;
        report.chaos_duplicated += out.chaos.duplicated;
      }
    }
    report.results = results_from_pooled(suite, pooled);
  }

  if (obs::enabled()) {
    auto& m = obs::instruments();
    m.bank_predictor_updates.inc(report.bank.predictor_updates);
    m.bank_lane_updates.inc(report.bank.lane_updates);
    m.bank_coalesced_timers.inc(report.bank.coalesced_timers);
    m.bank_dispatch_errors.inc(report.bank.dispatch_errors);
    m.sim_safe_window_advances.inc(report.sim_rounds);
    m.sim_lp_stalls.inc(report.sim_stalls);
    m.sim_cross_lp_messages.inc(report.sim_cross_lp_messages);
    if (config.sim_engine == SimEngine::kLp) {
      m.sim_safe_window_ms.set(report.sim_last_window_ms);
    }
  }

  if (progress != nullptr) {
    progress->emitter.emit(
        "done: %zu runs, %llu crashes, %llu heartbeats sent, %llu delivered",
        config.runs, static_cast<unsigned long long>(report.total_crashes),
        static_cast<unsigned long long>(report.heartbeats_sent),
        static_cast<unsigned long long>(report.heartbeats_delivered));
  }
  if (obs::enabled()) {
    // Final /runs row: whole-invocation totals, marked finished so a
    // scrape arriving after the join still sees a consistent summary.
    obs::RunStatus st;
    st.id = config.run_id;
    st.verb = config.run_verb;
    st.suite = config.suite_label;
    st.runs_total = config.runs;
    st.runs_started = config.runs;
    st.runs_done = config.runs;
    st.crashes = report.total_crashes;
    st.heartbeats_sent = report.heartbeats_sent;
    st.detectors = suite.size() * config.endpoints;
    st.suspecting = 0;
    st.sim_time_s = run_end.to_seconds_double();
    st.finished = true;
    obs::RunRegistry::global().update(st);
    // run_guard clears the run context and (idempotently) re-finishes the
    // row when it goes out of scope.
  }
  return report;
}

const FdQosResult* find_result(const QosReport& report,
                               const std::string& name) {
  for (const auto& result : report.results) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

std::uint64_t fleet_endpoint_seed(std::uint64_t seed, std::size_t endpoint) {
  // Endpoint 0 IS the experiment seed, so a 1-endpoint fleet reproduces
  // the legacy single-endpoint run bit-for-bit; the rest draw from a
  // dedicated substream so no endpoint's tree collides with the run forks.
  if (endpoint == 0) return seed;
  return Rng(seed).fork("endpoint").fork(endpoint).next_u64();
}

std::size_t resolve_fleet_shards(const QosExperimentConfig& config) {
  const std::size_t endpoints = config.endpoints == 0 ? 1 : config.endpoints;
  const std::size_t shards = config.fleet_shards == 0
                                 ? std::min(endpoints, exec::default_jobs())
                                 : std::min(config.fleet_shards, endpoints);
  return std::max<std::size_t>(shards, 1);
}

QosReport fleet_endpoint_view(const QosReport& report, std::size_t endpoint) {
  FDQOS_REQUIRE(endpoint < report.endpoint_results.size());
  QosReport view;
  // The config of the equivalent standalone experiment: same knobs, the
  // endpoint's own seed, fleet mode off. Its fingerprint is directly
  // comparable to a run_qos_experiment call with this config.
  view.config = report.config;
  view.config.seed = fleet_endpoint_seed(report.config.seed, endpoint);
  view.config.endpoints = 1;
  view.config.fleet_shards = 0;
  view.config.force_fleet_engine = false;
  view.results = report.endpoint_results[endpoint];
  view.total_crashes = report.endpoint_crashes[endpoint];
  view.heartbeats_sent = report.endpoint_hb_sent[endpoint];
  view.heartbeats_delivered = report.endpoint_hb_delivered[endpoint];
  return view;
}

}  // namespace fdqos::exp
