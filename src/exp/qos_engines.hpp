// Internal engine surface of the QoS experiment — the per-unit simulation
// drivers behind exp::QosWorkload (exp/qos_workload.hpp).
//
// Everything here executes ONE independent seeded unit and returns its
// output by value; nothing reduces, prints or touches the report. The
// split (engines here, orchestration in QosWorkload, fan-out/join in
// run_workload) is the refactor seam that lets application workloads —
// leader election, consensus — reuse the exact engines and reductions
// without re-deriving the determinism rules.
//
// This header is internal to fdqos::exp and the workload layer: the
// `detail` namespace is the stability contract (no CLI or test should
// reach in except the byte-identity suite).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "faultx/fault_models.hpp"
#include "faultx/fault_schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/parallel_simulator.hpp"

namespace fdqos::exp::detail {

// Node ids of the two-process paper topology (Figure 3): every engine and
// every fleet endpoint uses this local pair on its own transport.
inline constexpr net::NodeId kMonitored = 0;
inline constexpr net::NodeId kMonitor = 1;

// Pooled per-detector accumulators across runs.
struct Pooled {
  stats::RunningStats td;
  stats::RunningStats tm;
  stats::RunningStats tmr;
  Duration up = Duration::zero();
  Duration wrong = Duration::zero();
  std::uint64_t crashes = 0;
  std::uint64_t detections = 0;
  std::uint64_t missed = 0;
  // One sample per run: that run's mean T_D / availability.
  stats::RunningStats per_run_td;
  stats::RunningStats per_run_availability;
};

// One finalized tracker folded into a pooled accumulator. Every engine
// (seq, lp, fleet) reduces through this one function in a fixed order, so
// the pooled moments never depend on the engine or on scheduling.
void merge_tracker(Pooled& p, const fd::QosTracker& tracker);

std::vector<FdQosResult> results_from_pooled(
    const std::vector<fd::FdSpec>& suite, const std::vector<Pooled>& pooled);

// Cached gauge handles for one detector lane, registered once per
// experiment and refreshed by the winning progress tick.
struct LaneGauges {
  obs::Gauge* suspect = nullptr;       // 1 while suspecting
  obs::Gauge* timeout_ms = nullptr;    // current δ = pred + sm
  obs::Gauge* mistakes = nullptr;      // recorded T_M samples so far
  obs::Gauge* detections = nullptr;    // detections so far
  obs::Gauge* recent_td_ms = nullptr;  // EWMA T_D (NaN until first crash)
  obs::Gauge* recent_tm_ms = nullptr;  // EWMA T_M (NaN until first mistake)
};

// Telemetry shared by every concurrent unit. The emitter's own mutex keeps
// single calls atomic; `mu` additionally serializes the due()+emit() pair
// and the gauge refresh so a status line and the gauges it reflects stay
// consistent with each other.
struct ProgressState {
  explicit ProgressState(obs::ProgressEmitter::Options opts)
      : emitter(std::move(opts)) {}

  obs::ProgressEmitter emitter;
  std::mutex mu;
  std::atomic<std::size_t> runs_started{0};
  std::atomic<std::size_t> runs_done{0};
  std::atomic<std::uint64_t> crashes_done{0};  // crashes in completed runs

  // Per-detector gauges (index-aligned with the suite; empty when obs is
  // off). Concurrent runs share the handles: the tick that wins `mu`
  // publishes its own run's lane state and stamps source_run so a scrape
  // knows which run it is looking at.
  std::vector<LaneGauges> lanes;
  obs::Gauge* source_run = nullptr;
  obs::Gauge* timer_lag_ms = nullptr;  // next freshness deadline − now
};

// Everything one run produces, extracted so runs can execute on pool
// threads and be reduced in run order afterwards.
struct RunOutput {
  std::vector<fd::QosTracker> trackers;  // finalized, index-aligned w/ suite
  std::uint64_t crash_count = 0;
  std::uint64_t hb_sent = 0;
  std::uint64_t hb_delivered = 0;
  faultx::FaultyTransport::Stats chaos;  // zero when no scenario active
  fd::DetectorBank::Counters bank;       // engine counters for this run
  sim::ParallelSimulator::Stats sim;     // zero under the sequential engine
};

// Everything one (run, shard) fleet unit produces.
struct FleetShardOutput {
  std::vector<std::vector<fd::QosTracker>> trackers;  // [local ep][lane]
  std::vector<std::uint64_t> crash_count;             // per local endpoint
  std::vector<std::uint64_t> hb_sent;
  std::vector<std::uint64_t> hb_delivered;
  faultx::FaultyTransport::Stats chaos;  // summed over the block
  fd::DetectorBank::Counters bank;       // summed member counters
  fd::FleetBank::Counters fleet;         // shard-level engine counters
  sim::ParallelSimulator::Stats sim;     // shard 0 of a kLp run only
};

// One self-contained seeded simulation (paper run), sequential engine.
RunOutput run_one(const QosExperimentConfig& config,
                  const std::vector<fd::FdSpec>& suite,
                  const std::shared_ptr<const std::vector<Duration>>& trace,
                  const std::shared_ptr<const faultx::FaultSchedule>& faults,
                  std::size_t run, const Rng& base_rng, TimePoint run_end,
                  ProgressState* progress);

// The same run under the conservative parallel core (SimEngine::kLp).
RunOutput run_one_lp(const QosExperimentConfig& config,
                     const std::vector<fd::FdSpec>& suite,
                     const std::shared_ptr<const std::vector<Duration>>& trace,
                     const std::shared_ptr<const faultx::FaultSchedule>& faults,
                     std::size_t run, const Rng& base_rng, TimePoint run_end,
                     ProgressState* progress, std::size_t lp_jobs);

// Shard s of S owns endpoints [begin(s), begin(s+1)): contiguous blocks,
// remainders spread over the first shards. A pure function of (M, S).
std::size_t fleet_shard_begin(std::size_t endpoints, std::size_t shards,
                              std::size_t s);

// One (run, shard) fleet unit under the sequential engine.
FleetShardOutput run_fleet_shard(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, std::size_t shard, TimePoint run_end,
    ProgressState* progress);

// One whole fleet run under the LP engine: endpoint shards map 1:1 onto
// LPs of one conservative parallel simulator.
std::vector<FleetShardOutput> run_fleet_run_lp(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, TimePoint run_end,
    ProgressState* progress, std::size_t lp_jobs);

}  // namespace fdqos::exp::detail
