// The QoS experiment (paper §5.2, Figures 4–8).
//
// Architecture per run (paper Figure 3), all in virtual time:
//
//   Monitored node:  Heartbeater(η) → SimCrash(MTTC, TTR) → network
//   Monitor node:    network → MultiPlexer → DetectorBank (30 lanes)
//
// Every detector lane receives the identical arrival stream; by default the
// whole suite runs on one batched fd::DetectorBank that evaluates each
// distinct predictor once per heartbeat (use_detector_bank = false restores
// one FreshnessDetector per spec — same report bytes, more work). A
// QosTracker per lane consumes its suspect transitions plus the injector's
// crash/restore ground truth. Results pool the T_D, T_M and T_MR samples
// across the configured number of runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fd/detector_bank.hpp"
#include "fd/fleet_bank.hpp"
#include "fd/qos_tracker.hpp"
#include "fd/suite.hpp"
#include "obs/progress.hpp"
#include "stats/running_stats.hpp"
#include "wan/italy_japan.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::exp {

// Simulation engine for each run (see docs/pdes.md).
//  kSeq: one sequential Simulator owns the whole sender+receiver stack —
//        the reference engine.
//  kLp:  the run is partitioned into logical processes (sender LP plus
//        detector-shard LPs) executed by the conservative parallel core
//        (sim/parallel_simulator.hpp). Reports are byte-identical to kSeq
//        at every lps/lp_jobs value.
enum class SimEngine { kSeq, kLp };

struct QosExperimentConfig {
  std::size_t runs = 13;            // paper: 13 experiment runs
  std::int64_t num_cycles = 10000;  // NumCycles heartbeat cycles per run
  Duration eta = Duration::seconds(1);
  Duration mttc = Duration::seconds(300);
  Duration ttr = Duration::seconds(30);
  Duration warmup = Duration::seconds(60);  // no samples recorded before this
  Duration cold_start_timeout = Duration::seconds(1);
  std::uint64_t seed = 42;
  wan::ItalyJapanParams link{};
  // When set, heartbeat delays come from this recorded trace (.fdt binary
  // or CSV, see docs/tracestore.md) instead of the synthetic link — the
  // paper's §6 plan of re-running the comparison on other WAN connections,
  // using delays captured from a real path. Loss is then whatever the
  // trace encoded (a lost heartbeat simply is not in the trace) plus none.
  std::string trace_path;
  // What replay does at trace end. kTruncate (default) ends the experiment
  // with the trace: num_cycles is clamped to the trace length so every run
  // replays a prefix and never re-reads a sample. kWrap restores the old
  // loop-the-trace behaviour; kExtend resamples the tail from a model
  // fitted to the recorded delays. Ignored when trace_path is empty.
  wan::ReplayPolicy replay_policy = wan::ReplayPolicy::kTruncate;
  // When set, every run records the delay stream its link actually
  // produced — with chaos active this is the *faulted* stream, so a chaos
  // scenario becomes a replayable artifact. Each run records into its own
  // hub shard keyed by run index; merge with record_hub->merged() after
  // the experiment returns (deterministic run order, any jobs value).
  std::shared_ptr<wan::TraceRecorderHub> record_hub;
  fd::PaperParams params{};
  // Optionally append the constant-margin (NFD-E-style) baselines.
  bool include_constant_baseline = false;
  double baseline_margin_ms = 100.0;
  // Additional detectors to run next to the paper suite (extensions,
  // configured NFD-E instances, ...). Names must be unique across the whole
  // assembled suite — results, figures and the bank's lanes are keyed by
  // name, so a duplicate would silently alias two detectors. Enforced (with
  // a clear stderr message) before any run starts.
  std::vector<fd::FdSpec> extra_specs;
  // Replace the 30-detector paper suite entirely (extra_specs still
  // appended) — for focused sweeps that don't need the full grid.
  bool include_paper_suite = true;
  // When > 0, emit a progress/telemetry line to stderr every this many
  // wall-clock seconds (run i/N, cycles done, crashes, heartbeat counts,
  // detectors currently suspecting). See docs/observability.md.
  double progress_interval_s = 0.0;
  // Telemetry identity (obs v2): the (run, suite) labels stamped on live
  // per-detector gauges, trace spans, progress JSONL records and the /runs
  // registry row, so one invocation's telemetry joins across all three
  // planes. Empty = derived deterministically: run_id from
  // "<run_verb>-seed<seed>", suite_label from the chaos scenario (or
  // "paper" when nominal). Purely observational — never reaches reports.
  std::string run_id;
  std::string run_verb = "qos";
  std::string suite_label;
  // Optional machine-readable mirror of the progress stream (one JSON
  // record per emitted line, atomic per line). Not owned; must outlive the
  // experiment. nullptr = stderr only.
  obs::JsonlSink* progress_jsonl = nullptr;
  // Worker threads for the run loop: runs are independent seeded
  // simulations (base_rng.fork(run)) executed concurrently, with pooled
  // statistics merged in run order after the join — the report is
  // byte-identical at every jobs value. 0 = exec::default_jobs()
  // (hardware concurrency), 1 = fully serial. See docs/parallelism.md.
  std::size_t jobs = 0;
  // Chaos injection (faultx): name of a scenario from
  // faultx::scenario_names(). When set, every run wraps its link models in
  // FaultyDelay/FaultyLoss and the monitored node's transport in
  // FaultyTransport, all driven by the same schedule (built once from the
  // warmup end and run horizon). Empty = nominal network.
  // See docs/fault_injection.md.
  std::string chaos_scenario;
  // Execution engine. true (default): the whole suite runs on one batched
  // fd::DetectorBank per run — each distinct predictor (grouped by
  // FdSpec::predictor_key) is evaluated once per heartbeat and the
  // freshness timers are coalesced. false: one FreshnessDetector per spec
  // (the legacy layout), kept for the bank-vs-legacy equivalence suite and
  // the overhead benches. Both engines produce byte-identical reports; see
  // docs/detector_bank.md.
  bool use_detector_bank = true;
  // Simulation engine (see SimEngine above). Under kLp each run is split
  // into `lps` logical processes: LP0 owns the sender stack (heartbeater,
  // crash injector, fault wrappers, link RNG draws) and LPs 1..lps-1 each
  // own a shard of the detector suite (predictor groups are never split).
  // lps = 1 keeps the whole stack on one LP (useful as the PDES baseline).
  // `lp_jobs` is the worker count executing LP windows inside one run:
  // 0 = auto (default_jobs() / outer `jobs`, at least 1), 1 = serial.
  SimEngine sim_engine = SimEngine::kSeq;
  std::size_t lps = 4;
  std::size_t lp_jobs = 0;
  // Fleet mode (docs/fleet.md): monitor `endpoints` independent processes,
  // each with its own link, crash injector and full detector suite, sharded
  // over `fleet_shards` fd::FleetBank shards (contiguous endpoint blocks).
  // Endpoint e's stochastic streams derive from fleet_endpoint_seed(seed,
  // e), and endpoint 0's seed IS the experiment seed — so endpoints = 1
  // runs the exact legacy single-endpoint path with byte-identical reports
  // at every jobs/lps value. Fleet mode requires the bank engine and no
  // record_hub. Under SimEngine::kLp each endpoint shard becomes one LP
  // (`lps` is ignored; shards are fully independent, so there are no
  // cross-LP channels at all).
  std::size_t endpoints = 1;
  // 0 = min(endpoints, exec::default_jobs()); always clamped to endpoints.
  std::size_t fleet_shards = 0;
  // Test hook: route even endpoints = 1 through the FleetBank engine (the
  // equivalence suite proves FleetBank M=1 ≡ DetectorBank this way).
  bool force_fleet_engine = false;
  // Test/diagnostic hook: invoked on every suspect transition as
  // (run, detector index, time, suspecting), in simulation order within a
  // run. May be called concurrently from worker threads, but only with
  // distinct `run` values — per-run consumers need no locking. In fleet
  // mode the detector index is endpoint·suite_width + lane, concurrency is
  // per distinct (run, endpoint-shard) pair, and per-(run, endpoint)
  // streams stay time-ordered. Null = off.
  std::function<void(std::size_t run, std::size_t detector, TimePoint t,
                     bool suspecting)>
      transition_probe;
  // Test/workload hook: the crash injector's ground truth, invoked as
  // (run, endpoint, time, crashed) on every crash/restore toggle, in
  // simulation order within a run (endpoint is 0 outside fleet mode).
  // Same concurrency contract as transition_probe: concurrent calls only
  // with distinct `run` (fleet: distinct (run, endpoint-shard)) values.
  // Under SimEngine::kLp the stream fires on the sender LP in simulation
  // order even when suspect transitions are replayed post-run. Null = off.
  std::function<void(std::size_t run, std::size_t endpoint, TimePoint t,
                     bool crashed)>
      crash_probe;
};

struct FdQosResult {
  std::string name;
  std::string predictor_label;
  std::string margin_label;
  fd::QosMetrics metrics;  // pooled over all runs
  // Run-to-run variability: per-run mean T_D / P_A across the experiment's
  // runs (count == number of runs that produced samples). The paper pools
  // 13 runs; this exposes how stable each configuration is between runs.
  stats::Summary per_run_td_mean_ms;
  stats::Summary per_run_availability;
};

struct QosReport {
  QosExperimentConfig config;
  std::vector<FdQosResult> results;
  std::uint64_t total_crashes = 0;      // per run set (same injector for all)
  std::uint64_t heartbeats_delivered = 0;
  std::uint64_t heartbeats_sent = 0;
  // Chaos accounting (zero when chaos_scenario is empty), summed over runs.
  std::uint64_t chaos_fault_events = 0;  // scheduled events per run
  std::uint64_t chaos_dropped = 0;       // eaten by partitions/flaps
  std::uint64_t chaos_duplicated = 0;    // extra copies injected
  // Detector-engine counters summed over runs (legacy runs sum the per-
  // wrapper 1-wide banks, so predictor_updates directly compares sharing:
  // 30 per heartbeat legacy vs 5 per heartbeat banked on the paper suite).
  // Not part of any report table — flushed into the fdqos::obs registry.
  fd::DetectorBank::Counters bank;
  // Parallel-engine coordinator counters summed over runs (all zero under
  // kSeq). Observability only — never part of any report table or the
  // report fingerprint; flushed into the obs registry like `bank`.
  std::uint64_t sim_rounds = 0;            // safe-window advances
  std::uint64_t sim_stalls = 0;            // zero-lookahead minimum grants
  std::uint64_t sim_cross_lp_messages = 0;
  double sim_last_window_ms = 0.0;         // widest grant, last round seen

  // Fleet mode only (empty/zero otherwise): per-endpoint pooled results
  // (endpoint-major; the top-level `results` pool across endpoints AND
  // runs) plus per-endpoint tallies summed over runs, and the fleet
  // shard-level counters summed over runs and shards.
  std::vector<std::vector<FdQosResult>> endpoint_results;
  std::vector<std::uint64_t> endpoint_crashes;
  std::vector<std::uint64_t> endpoint_hb_sent;
  std::vector<std::uint64_t> endpoint_hb_delivered;
  fd::FleetBank::Counters fleet;
};

QosReport run_qos_experiment(const QosExperimentConfig& config);

// Look up a result by detector name; nullptr if absent.
const FdQosResult* find_result(const QosReport& report, const std::string& name);

// Fleet helpers (docs/fleet.md).
//
// The seed endpoint e's whole stochastic stack forks from; endpoint 0's is
// the experiment seed itself, so a 1-endpoint fleet is bit-for-bit the
// legacy experiment and endpoint e of a fleet run equals a standalone run
// seeded with fleet_endpoint_seed(seed, e).
std::uint64_t fleet_endpoint_seed(std::uint64_t seed, std::size_t endpoint);
// Resolved shard count for a config (applies the 0 = auto rule).
std::size_t resolve_fleet_shards(const QosExperimentConfig& config);
// A single-endpoint-shaped view of one fleet endpoint: results, crash and
// heartbeat tallies of endpoint e with the config rewritten to the
// equivalent standalone experiment (seed swapped, endpoints = 1) — its
// qos_report_fingerprint() is directly comparable to that standalone run.
QosReport fleet_endpoint_view(const QosReport& report, std::size_t endpoint);

}  // namespace fdqos::exp
