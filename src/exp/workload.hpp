// exp::Workload — the seam between "an experiment" and "how it runs".
//
// A workload is anything that decomposes into independent seeded execution
// units (one simulation per unit) and reduces the unit outputs into a
// report: the pure detector-QoS comparison, a fleet sweep, or an
// application workload whose metric depends on the detectors (leader
// election scored by time-without-leader, consensus latency, ...). The
// run_workload() harness owns the one rule every workload already obeyed
// implicitly:
//
//   fan the units over a thread pool, then reduce in unit order —
//   report bytes are a pure function of (seed, config), never of --jobs,
//   scheduling or machine.
//
// Hooks and their contracts:
//   prepare()          validate config, load shared immutable inputs
//                      (traces, suites, fault schedules), register
//                      telemetry. Runs once, before anything else.
//   unit_count()       number of independent units. The harness clamps the
//                      worker count to it (jobs = min(requested or
//                      default_jobs(), units)) exactly as the QoS run loop
//                      always did.
//   begin(jobs)        the resolved worker count, before the fan-out —
//                      workloads that nest inner parallelism (LP workers
//                      inside run workers) split the hardware here.
//   run_unit(u)        one self-contained unit. Called concurrently, but
//                      only with distinct u; a unit may touch only its own
//                      slot of any shared output vector.
//   reduce()           ordered post-join reduction (the PR 2 rule): fold
//                      unit outputs in ascending unit order, flush obs
//                      counters, assemble the report.
//   report_sections()  the finished report as typed sections, in a fixed
//                      order that never depends on jobs or engine.
//
// Composition: a workload that consumes another's execution (leader
// election over the QoS engines) embeds it and delegates the unit hooks,
// adding its own capture and reduction — see workload/leader_election.hpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "stats/table_writer.hpp"

namespace fdqos::exp {

// One typed block of a workload report: a titled table plus optional
// trailing lines (totals, invariant verdicts). Sections print in vector
// order; the order is part of the workload's determinism contract.
struct ReportSection {
  std::string title;
  stats::TableWriter table;
  std::vector<std::string> notes;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;

  virtual void prepare() = 0;
  virtual std::size_t unit_count() const = 0;
  virtual void begin(std::size_t jobs) { (void)jobs; }
  virtual void run_unit(std::size_t unit) = 0;
  virtual void reduce() = 0;
  virtual std::vector<ReportSection> report_sections() const = 0;

  // Requested worker count (0 = exec::default_jobs()); the harness clamps
  // it to unit_count() and reports the resolved value through begin().
  virtual std::size_t requested_jobs() const = 0;
};

// Run a workload end to end: prepare, resolve jobs, fan units over a
// thread pool, reduce in unit order. Exceptions from units propagate after
// the pool drains (exec::ThreadPool's first-exception rule).
void run_workload(Workload& workload);

// Name -> factory registry. Factories take the shared experiment config
// (runs, cycles, seed, engines, chaos scenario, fleet shape, jobs) so
// every workload inherits --scenario/--seed/--jobs/--sim-engine parity for
// free. register_workload() replaces an existing entry with the same name.
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const QosExperimentConfig&)>;

void register_workload(const std::string& name, WorkloadFactory factory);
std::vector<std::string> workload_names();
// nullptr when `name` is not registered.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const QosExperimentConfig& config);

}  // namespace fdqos::exp
