#include "exp/qos_workload.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "exec/thread_pool.hpp"
#include "exp/chaos.hpp"
#include "exp/report.hpp"
#include "faultx/scenarios.hpp"
#include "obs/instruments.hpp"
#include "wan/trace.hpp"

namespace fdqos::exp {

using detail::FleetShardOutput;
using detail::LaneGauges;
using detail::Pooled;
using detail::ProgressState;
using detail::RunOutput;

QosWorkload::QosWorkload(QosExperimentConfig config)
    : config_(std::move(config)) {}

QosWorkload::~QosWorkload() = default;

const std::string& QosWorkload::name() const {
  static const std::string kName = "qos";
  return kName;
}

void QosWorkload::prepare() {
  FDQOS_REQUIRE(config_.runs > 0);
  FDQOS_REQUIRE(config_.num_cycles > 0);
  FDQOS_REQUIRE(config_.endpoints > 0);

  fleet_mode_ = config_.endpoints > 1 || config_.force_fleet_engine;
  if (fleet_mode_) {
    // Fleet runs route every endpoint's suite through fd::FleetBank
    // members — there is no legacy-engine fleet — and the recording hub
    // shards by run index only, so M endpoint streams would collide.
    if (!config_.use_detector_bank) {
      std::fprintf(stderr,
                   "fdqos: fleet mode (--endpoints > 1) requires the bank "
                   "engine\n");
      FDQOS_REQUIRE(!"fleet mode requires the detector bank engine");
    }
    if (config_.record_hub != nullptr) {
      std::fprintf(stderr,
                   "fdqos: fleet mode cannot record traces (the recorder hub "
                   "shards by run index only)\n");
      FDQOS_REQUIRE(!"fleet mode is incompatible with record_hub");
    }
    shards_ = resolve_fleet_shards(config_);
  }

  // Telemetry identity. Derived deterministically (never from wall clocks
  // or PIDs) so goldens and re-runs carry stable labels; derivation is
  // unconditional so the echoed report config is independent of whether
  // telemetry happens to be enabled.
  if (config_.run_id.empty()) {
    config_.run_id = config_.run_verb + "-seed" + std::to_string(config_.seed);
  }
  if (config_.suite_label.empty()) {
    config_.suite_label =
        config_.chaos_scenario.empty() ? "paper" : config_.chaos_scenario;
  }
  if (obs::enabled()) {
    obs::set_run_context(config_.run_id, config_.suite_label);
    // Seed the /runs row before any work: a run that dies before its first
    // progress tick still appears, and the RAII guard marks the row
    // finished (and clears the context) on *every* exit path — including
    // an exception unwinding out of the run loop, which parallel_for
    // rethrows on this thread. tests/obs/run_registry_test.cpp pins this.
    obs::RunStatus st;
    st.id = config_.run_id;
    st.verb = config_.run_verb;
    st.suite = config_.suite_label;
    st.runs_total = config_.runs;
    obs::RunRegistry::global().update(st);
    run_guard_.emplace(config_.run_id);
  }

  // Load the replay trace once; every run shares the immutable data.
  if (!config_.trace_path.empty()) {
    wan::TraceLoadResult loaded = wan::load_trace(config_.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "fdqos: cannot load trace: %s\n",
                   loaded.error.c_str());
      FDQOS_REQUIRE(!"trace load failed in run_qos_experiment");
    }
    trace_data_ = loaded.trace;
    // Aliasing share: the delay column lives inside the loaded Trace.
    trace_ = std::shared_ptr<const std::vector<Duration>>(
        trace_data_, &trace_data_->delays);
    if (config_.replay_policy == wan::ReplayPolicy::kTruncate &&
        static_cast<std::uint64_t>(config_.num_cycles) > trace_data_->size()) {
      // The experiment ends with the trace: every run replays a strict
      // prefix and no sample is ever re-read (wrap/extend opt out).
      FDQOS_LOG_INFO(
          "trace %s has %zu samples; truncating NumCycles %lld -> %zu",
          config_.trace_path.c_str(), trace_data_->size(),
          static_cast<long long>(config_.num_cycles), trace_data_->size());
      config_.num_cycles = static_cast<std::int64_t>(trace_data_->size());
    }
  }

  if (config_.include_paper_suite) {
    suite_ = fd::make_paper_suite(config_.params);
  }
  if (config_.include_constant_baseline) {
    auto baselines = fd::make_constant_margin_suite(config_.baseline_margin_ms,
                                                    config_.params);
    for (auto& spec : baselines) suite_.push_back(std::move(spec));
  }
  for (const auto& spec : config_.extra_specs) suite_.push_back(spec);
  FDQOS_REQUIRE(!suite_.empty());

  // Names key results, figure cells and the bank's lanes; a duplicate (or
  // empty) name would silently alias two detectors. Reject loudly up front.
  std::unordered_set<std::string> seen_names;
  for (const auto& spec : suite_) {
    if (spec.name.empty()) {
      std::fprintf(stderr,
                   "fdqos: qos suite contains a detector with an empty name "
                   "(predictor=%s margin=%s); every spec needs a unique "
                   "non-empty name\n",
                   spec.predictor_label.c_str(), spec.margin_label.c_str());
      FDQOS_REQUIRE(!"empty detector name in qos suite");
    }
    if (!seen_names.insert(spec.name).second) {
      std::fprintf(stderr,
                   "fdqos: duplicate detector name '%s' in qos suite "
                   "(extra_specs and the paper/baseline suites share one "
                   "namespace); names must be unique\n",
                   spec.name.c_str());
      FDQOS_REQUIRE(!"duplicate detector name in qos suite");
    }
  }

  report_ = QosReport{};
  report_.config = config_;

  base_rng_.emplace(config_.seed);
  run_end_ = TimePoint::origin() + config_.eta * config_.num_cycles +
             config_.ttr + Duration::seconds(5);

  // Build the fault schedule once; every run overlays the same immutable
  // event timeline (per-run randomness lives in the wrapper models).
  if (!config_.chaos_scenario.empty()) {
    FDQOS_REQUIRE(faultx::is_scenario(config_.chaos_scenario));
    faultx::ScenarioParams sp;
    sp.active_start = TimePoint::origin() + config_.warmup;
    sp.horizon = run_end_;
    faults_ = std::make_shared<const faultx::FaultSchedule>(
        faultx::make_scenario(config_.chaos_scenario, sp));
  }

  if (config_.progress_interval_s > 0.0) {
    obs::ProgressEmitter::Options opts;
    opts.interval_s = config_.progress_interval_s;
    opts.prefix = "[fdqos " + config_.run_verb + "]";
    opts.jsonl = config_.progress_jsonl;
    opts.run_id = config_.run_id;
    progress_ = std::make_unique<ProgressState>(std::move(opts));
    // Fleet runs can hold endpoints × suite lanes — far too many gauge
    // series; their ticks publish shard aggregates instead (see
    // install_fleet_progress), so the per-lane handles are skipped.
    if (obs::enabled() && !fleet_mode_) {
      // Register the per-detector gauge handles once, up front; ticks then
      // touch only relaxed atomics. Labels carry (detector, run, suite) so
      // concurrent invocations in one process stay distinguishable.
      auto& reg = obs::Registry::global();
      const obs::Labels run_labels = {{"run", config_.run_id},
                                      {"suite", config_.suite_label}};
      progress_->lanes.reserve(suite_.size());
      for (const auto& spec : suite_) {
        obs::Labels labels = run_labels;
        labels.emplace_back("detector", spec.name);
        LaneGauges g;
        g.suspect = &reg.gauge("fdqos_detector_suspect",
                               "1 while the detector suspects the monitored "
                               "process, 0 while it trusts it",
                               labels);
        g.timeout_ms = &reg.gauge("fdqos_detector_timeout_ms",
                                  "Current freshness timeout delta = "
                                  "prediction + safety margin, milliseconds",
                                  labels);
        g.mistakes = &reg.gauge("fdqos_detector_mistakes",
                                "Mistake (wrong suspicion) samples recorded "
                                "so far in the source run",
                                labels);
        g.detections = &reg.gauge("fdqos_detector_detections",
                                  "Crash detections recorded so far in the "
                                  "source run",
                                  labels);
        g.recent_td_ms = &reg.gauge("fdqos_detector_recent_td_ms",
                                    "EWMA (alpha=0.2) of recent detection "
                                    "times T_D, milliseconds; NaN before "
                                    "the first detection",
                                    labels);
        g.recent_tm_ms = &reg.gauge("fdqos_detector_recent_tm_ms",
                                    "EWMA (alpha=0.2) of recent mistake "
                                    "durations T_M, milliseconds; NaN "
                                    "before the first mistake",
                                    labels);
        progress_->lanes.push_back(g);
      }
      progress_->source_run = &reg.gauge(
          "fdqos_detector_source_run",
          "Run index whose state the per-detector gauges currently show",
          run_labels);
      progress_->timer_lag_ms = &reg.gauge(
          "fdqos_freshness_timer_lag_ms",
          "Next armed freshness-timer deadline minus current virtual time "
          "in the source run, milliseconds; NaN while no timer is armed",
          run_labels);
    }
  }

  if (fleet_mode_) {
    // Register the fdqos_fleet_* families before any run starts, so a
    // mid-run scrape already sees them; the shard counters are flushed
    // from the reduction totals at the end (per-invocation artifacts, not
    // live increments — the live view is the /runs row and the gauges).
    shard_heartbeats_.assign(shards_, nullptr);
    shard_timer_events_.assign(shards_, nullptr);
    shard_coalesced_.assign(shards_, nullptr);
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      const obs::Labels run_labels = {{"run", config_.run_id},
                                      {"suite", config_.suite_label}};
      reg.gauge("fdqos_fleet_endpoints",
                "Monitored endpoints in the fleet experiment", run_labels)
          .set(static_cast<double>(config_.endpoints));
      reg.gauge("fdqos_fleet_shards",
                "FleetBank shards the endpoints are split over", run_labels)
          .set(static_cast<double>(shards_));
      for (std::size_t s = 0; s < shards_; ++s) {
        obs::Labels labels = run_labels;
        labels.emplace_back("shard", std::to_string(s));
        shard_heartbeats_[s] =
            &reg.counter("fdqos_fleet_heartbeats_total",
                         "Heartbeats ingested by the fleet shard, summed over "
                         "runs",
                         labels);
        shard_timer_events_[s] =
            &reg.counter("fdqos_fleet_timer_events_total",
                         "Shard-level armed timer events fired, summed over "
                         "runs",
                         labels);
        shard_coalesced_[s] =
            &reg.counter("fdqos_fleet_coalesced_events_total",
                         "Member simulator events avoided by shard-level "
                         "coalescing, summed over runs",
                         labels);
      }
    }
    fleet_outputs_.resize(config_.runs);
    for (auto& per_run : fleet_outputs_) per_run.resize(shards_);
    shards_left_ =
        std::make_unique<std::atomic<std::size_t>[]>(config_.runs);
    for (std::size_t r = 0; r < config_.runs; ++r) {
      shards_left_[r].store(shards_, std::memory_order_relaxed);
    }
  } else {
    outputs_.resize(config_.runs);
  }
}

std::size_t QosWorkload::unit_count() const {
  if (fleet_mode_ && config_.sim_engine != SimEngine::kLp) {
    return config_.runs * shards_;
  }
  return config_.runs;
}

void QosWorkload::begin(std::size_t jobs) {
  // LP workers nest inside the harness's unit workers; auto mode splits
  // the hardware between the two levels so lp_jobs × jobs ≈ default_jobs().
  if (config_.sim_engine == SimEngine::kLp) {
    if (!fleet_mode_) FDQOS_REQUIRE(config_.lps > 0);
    lp_jobs_ = config_.lp_jobs != 0
                   ? config_.lp_jobs
                   : std::max<std::size_t>(1, exec::default_jobs() / jobs);
  }
}

void QosWorkload::run_unit(std::size_t unit) {
  if (!fleet_mode_) {
    outputs_[unit] =
        config_.sim_engine == SimEngine::kLp
            ? detail::run_one_lp(config_, suite_, trace_, faults_, unit,
                                 *base_rng_, run_end_, progress_.get(),
                                 lp_jobs_)
            : detail::run_one(config_, suite_, trace_, faults_, unit,
                              *base_rng_, run_end_, progress_.get());
    return;
  }

  auto shard_done = [this](std::size_t run, const FleetShardOutput& out) {
    if (progress_ == nullptr) return;
    std::uint64_t crashes = 0;
    for (const std::uint64_t c : out.crash_count) crashes += c;
    progress_->crashes_done.fetch_add(crashes, std::memory_order_relaxed);
    if (shards_left_[run].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      progress_->runs_done.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (config_.sim_engine == SimEngine::kLp) {
    // One unit per run; the run's shards execute as LPs of one parallel
    // simulator with lp_jobs_ workers.
    const std::size_t run = unit;
    if (progress_ != nullptr) {
      progress_->runs_started.fetch_add(1, std::memory_order_relaxed);
    }
    fleet_outputs_[run] =
        detail::run_fleet_run_lp(config_, suite_, trace_, faults_, run,
                                 shards_, run_end_, progress_.get(), lp_jobs_);
    for (const auto& out : fleet_outputs_[run]) shard_done(run, out);
  } else {
    // Flattened (run, shard) grid: every unit is an independent seeded
    // simulation, reduced in fixed order afterwards.
    const std::size_t run = unit / shards_;
    const std::size_t shard = unit % shards_;
    if (progress_ != nullptr && shard == 0) {
      progress_->runs_started.fetch_add(1, std::memory_order_relaxed);
    }
    fleet_outputs_[run][shard] =
        detail::run_fleet_shard(config_, suite_, trace_, faults_, run, shards_,
                                shard, run_end_, progress_.get());
    shard_done(run, fleet_outputs_[run][shard]);
  }
}

void QosWorkload::reduce_single() {
  // Ordered reduction: identical merge sequence as the serial loop.
  std::vector<Pooled> pooled(suite_.size());
  for (std::size_t run = 0; run < config_.runs; ++run) {
    const RunOutput& out = outputs_[run];
    for (std::size_t i = 0; i < suite_.size(); ++i) {
      detail::merge_tracker(pooled[i], out.trackers[i]);
    }
    report_.total_crashes += out.crash_count;
    report_.heartbeats_sent += out.hb_sent;
    report_.heartbeats_delivered += out.hb_delivered;
    report_.bank.add(out.bank);
    report_.sim_rounds += out.sim.rounds;
    report_.sim_stalls += out.sim.stalls;
    report_.sim_cross_lp_messages += out.sim.cross_lp_messages;
    if (out.sim.rounds > 0) {
      report_.sim_last_window_ms =
          out.sim.last_window == Duration::max()
              ? std::numeric_limits<double>::infinity()
              : out.sim.last_window.to_millis_double();
    }
    if (faults_ != nullptr) {
      report_.chaos_fault_events += faults_->event_count();
      report_.chaos_dropped += out.chaos.fault_dropped;
      report_.chaos_duplicated += out.chaos.duplicated;
    }
  }
  report_.results = detail::results_from_pooled(suite_, pooled);
}

void QosWorkload::reduce_fleet() {
  // Ordered reduction. Within a run, shards ascend and local endpoints
  // ascend within a shard, so endpoints merge in global index order.
  const std::size_t M = config_.endpoints;
  std::vector<Pooled> pooled(suite_.size());
  std::vector<std::vector<Pooled>> pooled_ep(
      M, std::vector<Pooled>(suite_.size()));
  report_.endpoint_crashes.assign(M, 0);
  report_.endpoint_hb_sent.assign(M, 0);
  report_.endpoint_hb_delivered.assign(M, 0);
  for (std::size_t run = 0; run < config_.runs; ++run) {
    for (std::size_t s = 0; s < shards_; ++s) {
      const FleetShardOutput& out = fleet_outputs_[run][s];
      const std::size_t ep_begin = detail::fleet_shard_begin(M, shards_, s);
      for (std::size_t le = 0; le < out.trackers.size(); ++le) {
        const std::size_t e = ep_begin + le;
        for (std::size_t i = 0; i < suite_.size(); ++i) {
          detail::merge_tracker(pooled[i], out.trackers[le][i]);
          detail::merge_tracker(pooled_ep[e][i], out.trackers[le][i]);
        }
        report_.total_crashes += out.crash_count[le];
        report_.heartbeats_sent += out.hb_sent[le];
        report_.heartbeats_delivered += out.hb_delivered[le];
        report_.endpoint_crashes[e] += out.crash_count[le];
        report_.endpoint_hb_sent[e] += out.hb_sent[le];
        report_.endpoint_hb_delivered[e] += out.hb_delivered[le];
      }
      report_.bank.add(out.bank);
      report_.fleet.add(out.fleet);
      report_.sim_rounds += out.sim.rounds;
      report_.sim_stalls += out.sim.stalls;
      report_.sim_cross_lp_messages += out.sim.cross_lp_messages;
      if (out.sim.rounds > 0) {
        report_.sim_last_window_ms =
            out.sim.last_window == Duration::max()
                ? std::numeric_limits<double>::infinity()
                : out.sim.last_window.to_millis_double();
      }
      if (faults_ != nullptr) {
        report_.chaos_dropped += out.chaos.fault_dropped;
        report_.chaos_duplicated += out.chaos.duplicated;
      }
    }
    // One schedule overlays every run, as in the single-endpoint engines.
    if (faults_ != nullptr) {
      report_.chaos_fault_events += faults_->event_count();
    }
  }

  report_.results = detail::results_from_pooled(suite_, pooled);
  report_.endpoint_results.reserve(M);
  for (std::size_t e = 0; e < M; ++e) {
    report_.endpoint_results.push_back(
        detail::results_from_pooled(suite_, pooled_ep[e]));
  }

  if (obs::enabled()) {
    for (std::size_t s = 0; s < shards_; ++s) {
      fd::FleetBank::Counters total;
      for (std::size_t run = 0; run < config_.runs; ++run) {
        total.add(fleet_outputs_[run][s].fleet);
      }
      shard_heartbeats_[s]->inc(total.heartbeats);
      shard_timer_events_[s]->inc(total.timer_events);
      shard_coalesced_[s]->inc(total.coalesced_events);
    }
  }
}

void QosWorkload::reduce() {
  if (fleet_mode_) {
    reduce_fleet();
  } else {
    reduce_single();
  }

  if (obs::enabled()) {
    auto& m = obs::instruments();
    m.bank_predictor_updates.inc(report_.bank.predictor_updates);
    m.bank_lane_updates.inc(report_.bank.lane_updates);
    m.bank_coalesced_timers.inc(report_.bank.coalesced_timers);
    m.bank_dispatch_errors.inc(report_.bank.dispatch_errors);
    m.sim_safe_window_advances.inc(report_.sim_rounds);
    m.sim_lp_stalls.inc(report_.sim_stalls);
    m.sim_cross_lp_messages.inc(report_.sim_cross_lp_messages);
    if (config_.sim_engine == SimEngine::kLp) {
      m.sim_safe_window_ms.set(report_.sim_last_window_ms);
    }
  }

  if (progress_ != nullptr) {
    progress_->emitter.emit(
        "done: %zu runs, %llu crashes, %llu heartbeats sent, %llu delivered",
        config_.runs, static_cast<unsigned long long>(report_.total_crashes),
        static_cast<unsigned long long>(report_.heartbeats_sent),
        static_cast<unsigned long long>(report_.heartbeats_delivered));
  }
  if (obs::enabled()) {
    // Final /runs row: whole-invocation totals, marked finished so a
    // scrape arriving after the join still sees a consistent summary.
    obs::RunStatus st;
    st.id = config_.run_id;
    st.verb = config_.run_verb;
    st.suite = config_.suite_label;
    st.runs_total = config_.runs;
    st.runs_started = config_.runs;
    st.runs_done = config_.runs;
    st.crashes = report_.total_crashes;
    st.heartbeats_sent = report_.heartbeats_sent;
    st.detectors = suite_.size() * config_.endpoints;
    st.suspecting = 0;
    st.sim_time_s = run_end_.to_seconds_double();
    st.finished = true;
    obs::RunRegistry::global().update(st);
  }
  // Finish the /runs row and clear the run context now, not at workload
  // destruction — an embedding workload (leader election) may keep this
  // object alive long after its runs are over.
  run_guard_.reset();
}

std::vector<ReportSection> QosWorkload::report_sections() const {
  std::vector<ReportSection> sections;
  if (!config_.chaos_scenario.empty()) {
    ReportSection chaos;
    chaos.title = "chaos";
    chaos.table = chaos_table(report_);
    sections.push_back(std::move(chaos));
  }
  for (const QosMetricKind kind :
       {QosMetricKind::kTd, QosMetricKind::kTdU, QosMetricKind::kTm,
        QosMetricKind::kTmr, QosMetricKind::kPa}) {
    ReportSection section;
    section.title = metric_name(kind);
    section.table = qos_metric_table(report_, kind);
    sections.push_back(std::move(section));
  }
  ReportSection tallies;
  tallies.title = "totals";
  tallies.table = stats::TableWriter("Totals");
  tallies.table.set_columns({"crashes", "hb sent", "hb delivered"});
  tallies.table.add_row({std::to_string(report_.total_crashes),
                         std::to_string(report_.heartbeats_sent),
                         std::to_string(report_.heartbeats_delivered)});
  sections.push_back(std::move(tallies));
  return sections;
}

}  // namespace fdqos::exp
