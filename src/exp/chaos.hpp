// Chaos QoS invariants — what must hold for *every* detector under *any*
// fault scenario (docs/fault_injection.md).
//
// The faultx scenarios push the link far outside the paper's calibrated
// regime; individual metric values are then uninteresting, but a family of
// structural properties must survive arbitrary delay/loss/partition/clock
// abuse. This module checks a finished QosReport against those properties
// and names each violation, so the invariant harness and the `fdqos chaos`
// CLI fail loudly with the invariant, detector, scenario and seed.
#pragma once

#include <string>
#include <vector>

#include "exp/qos_experiment.hpp"
#include "stats/table_writer.hpp"

namespace fdqos::exp {

struct InvariantViolation {
  std::string invariant;  // stable machine-matchable name, e.g. "pa-range"
  std::string detail;     // human-readable: detector + offending values
};

// Check every invariant against every detector result in the report:
//
//   completeness       every crash is eventually suspected (missed == 0).
//                      Holds because the injector's TTR exceeds any finite
//                      detector timeout: silence eventually wins.
//   crash-consistency  detections + missed ≤ crashes ≤ detections+missed+1
//                      (the +1 is a crash still pending at run end), and
//                      every detector observed the same crash count.
//   td-nonnegative     all T_D samples ≥ 0 (min ≥ 0 when any recorded).
//   tm-nonnegative     same for T_M.
//   tmr-nonnegative    same for T_MR.
//   tmr-dominates-tm   pooled sum(T_MR) ≥ sum(T_M) − (n_TM − n_TMR)·max(T_M)
//                      − eps: each recorded recurrence spans its opening
//                      mistake, and only the unpaired mistakes (each ≤ max)
//                      may lack a recurrence sample. (Mean-vs-mean does NOT
//                      hold in general; see the test for a counterexample.)
//   pa-range           P_A ∈ [0, 1] and availability ∈ [0, 1].
//   finite-stats       no NaN/Inf anywhere (min/max skipped at count 0,
//                      where they are NaN by Summary's convention).
//   heartbeat-accounting  delivered ≤ sent.
//
// Returns every violation found (empty == all invariants hold).
std::vector<InvariantViolation> qos_invariant_violations(
    const QosReport& report);

// One-row summary of the injected chaos: scenario, scheduled events per
// run, messages eaten by partitions/flaps, duplicates injected.
stats::TableWriter chaos_table(const QosReport& report);

}  // namespace fdqos::exp
