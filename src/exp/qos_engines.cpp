#include "exp/qos_engines.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "faultx/scenarios.hpp"
#include "fd/freshness_detector.hpp"
#include "net/lp_transport.hpp"
#include "net/sim_transport.hpp"
#include "obs/instruments.hpp"
#include "obs/runs.hpp"
#include "runtime/heartbeater.hpp"
#include "runtime/multiplexer.hpp"
#include "runtime/process_node.hpp"
#include "runtime/sim_crash.hpp"
#include "sim/simulator.hpp"
#include "wan/trace.hpp"

namespace fdqos::exp::detail {

fd::QosMetrics pooled_metrics(const Pooled& p) {
  fd::QosMetrics m;
  m.detection_time_ms = p.td.summary();
  m.mistake_duration_ms = p.tm.summary();
  m.mistake_recurrence_ms = p.tmr.summary();
  m.crashes_observed = p.crashes;
  m.detections = p.detections;
  m.missed_detections = p.missed;
  m.mistakes = p.tm.count();
  if (p.up > Duration::zero()) {
    m.availability =
        1.0 - p.wrong.to_seconds_double() / p.up.to_seconds_double();
  }
  if (p.tmr.count() > 0 && p.tmr.mean() > 0.0) {
    m.query_accuracy =
        std::max(0.0, (p.tmr.mean() - p.tm.mean()) / p.tmr.mean());
  } else {
    m.query_accuracy = m.availability;
  }
  return m;
}

void merge_tracker(Pooled& p, const fd::QosTracker& tracker) {
  p.td.merge(tracker.td_stats());
  p.tm.merge(tracker.tm_stats());
  p.tmr.merge(tracker.tmr_stats());
  p.up += tracker.observed_up_time();
  p.wrong += tracker.wrong_suspicion_time();
  p.crashes += tracker.crash_count();
  p.detections += tracker.detection_count();
  p.missed += tracker.missed_detection_count();
  if (tracker.td_stats().count() > 0) {
    p.per_run_td.add(tracker.td_stats().mean());
  }
  p.per_run_availability.add(tracker.metrics().availability);
}

std::vector<FdQosResult> results_from_pooled(
    const std::vector<fd::FdSpec>& suite, const std::vector<Pooled>& pooled) {
  std::vector<FdQosResult> results;
  results.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    FdQosResult result;
    result.name = suite[i].name;
    result.predictor_label = suite[i].predictor_label;
    result.margin_label = suite[i].margin_label;
    result.metrics = pooled_metrics(pooled[i]);
    result.per_run_td_mean_ms = pooled[i].per_run_td.summary();
    result.per_run_availability = pooled[i].per_run_availability.summary();
    results.push_back(std::move(result));
  }
  return results;
}

namespace {

// The per-run link stack, identical under both engines: trace replay or the
// synthetic Italy→Japan models, optionally wrapped by chaos and recording.
// RNG forks are pure functions of (parent, name), so sharing this builder
// keeps the two engines' draw sequences aligned by construction.
net::SimTransport::LinkConfig make_link_config(
    const QosExperimentConfig& config,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run) {
  net::SimTransport::LinkConfig link;
  if (trace == nullptr) {
    link.delay = wan::make_italy_japan_delay(config.link);
    link.loss = wan::make_italy_japan_loss(config.link);
  } else {
    // Each run replays the identical trace (loaded once, shared
    // immutably; the replay cursor is per-instance); runs differ only in
    // the crash schedule. With the default truncate policy the caller has
    // already clamped num_cycles to the trace length.
    link.delay =
        std::make_unique<wan::TraceReplayDelay>(trace, config.replay_policy);
  }
  if (faults != nullptr) {
    // Chaos: the same immutable schedule overlays every run; all per-run
    // fault state (burst chains, duplication draws) lives in the wrappers.
    link.delay =
        std::make_unique<faultx::FaultyDelay>(std::move(link.delay), faults);
    link.loss =
        std::make_unique<faultx::FaultyLoss>(std::move(link.loss), faults);
  }
  if (config.record_hub != nullptr) {
    // Tracestore hook: capture the delay stream exactly as the link
    // produced it — outside the fault wrapper, so a chaos run records the
    // faulted delays and becomes a replayable artifact. One shard per run
    // index keeps parallel runs race-free and the merge order fixed.
    link.delay = std::make_unique<wan::RecordingDelay>(
        std::move(link.delay), config.record_hub, run);
  }
  return link;
}

}  // namespace

RunOutput run_one(const QosExperimentConfig& config,
                  const std::vector<fd::FdSpec>& suite,
                  const std::shared_ptr<const std::vector<Duration>>& trace,
                  const std::shared_ptr<const faultx::FaultSchedule>& faults,
                  std::size_t run, const Rng& base_rng, TimePoint run_end,
                  ProgressState* progress) {
  Rng run_rng = base_rng.fork(run);
  if (progress != nullptr) {
    progress->runs_started.fetch_add(1, std::memory_order_relaxed);
  }

  sim::Simulator simulator;
  net::SimTransport transport(simulator, run_rng.fork("net"));
  transport.set_link(kMonitored, kMonitor,
                     make_link_config(config, trace, faults, run));

  // Transport-level faults (partitions, flaps, duplication, clock stamps)
  // wrap only the monitored node's view of the network.
  std::optional<faultx::FaultyTransport> chaos_net;
  net::Transport* monitored_net = &transport;
  if (faults != nullptr) {
    chaos_net.emplace(transport, faults, run_rng.fork("faultx"));
    monitored_net = &*chaos_net;
  }

  // Monitored node: Heartbeater over SimCrash.
  runtime::ProcessNode monitored(*monitored_net, kMonitored);
  auto& crash_layer = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      simulator,
      runtime::SimCrashLayer::Config{config.mttc, config.ttr},
      run_rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb_config;
  hb_config.eta = config.eta;
  hb_config.self = kMonitored;
  hb_config.monitor = kMonitor;
  hb_config.max_cycles = config.num_cycles;
  auto& heartbeater = monitored.push(
      std::make_unique<runtime::HeartbeaterLayer>(simulator, hb_config));

  // Monitor node: MultiPlexer fanning out to every detector.
  runtime::ProcessNode monitor(transport, kMonitor);
  auto& mux = monitor.push(std::make_unique<runtime::MultiPlexerLayer>());

  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  std::vector<fd::QosTracker> trackers;
  trackers.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    trackers.emplace_back(warmup_end);
  }
  // Both engines funnel transitions through the same per-lane sink, so the
  // tracker update sequence (and the optional probe stream) is identical.
  auto on_transition = [&trackers, &config, run](std::size_t i, TimePoint t,
                                                 bool suspecting) {
    if (suspecting) {
      trackers[i].suspect_started(t);
    } else {
      trackers[i].suspect_ended(t);
    }
    if (config.transition_probe) config.transition_probe(run, i, t, suspecting);
  };

  std::unique_ptr<fd::DetectorBank> bank;                 // batched engine
  std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;  // legacy
  if (config.use_detector_bank) {
    fd::DetectorBank::Config bank_config;
    bank_config.eta = config.eta;
    bank_config.monitored = kMonitored;
    bank_config.cold_start_timeout = config.cold_start_timeout;
    bank_config.name = "qos-bank";
    bank = std::make_unique<fd::DetectorBank>(simulator, bank_config);
    // One predictor group per distinct non-empty predictor_key; an empty
    // key never shares (the spec made no identical-behaviour promise).
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (const auto& spec : suite) {
      std::size_t group;
      const auto it = spec.predictor_key.empty()
                          ? group_by_key.end()
                          : group_by_key.find(spec.predictor_key);
      if (it != group_by_key.end()) {
        group = it->second;
      } else {
        group = bank->add_group(spec.make_predictor());
        if (!spec.predictor_key.empty()) {
          group_by_key.emplace(spec.predictor_key, group);
        }
      }
      bank->add_lane(spec.name, group, spec.make_margin());
    }
    bank->set_observer(
        [&on_transition](std::size_t lane, TimePoint t, bool suspecting) {
          on_transition(lane, t, suspecting);
        });
    monitor.attach_unowned(mux, *bank);
  } else {
    detectors.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      fd::FreshnessDetector::Config fd_config;
      fd_config.eta = config.eta;
      fd_config.monitored = kMonitored;
      fd_config.cold_start_timeout = config.cold_start_timeout;
      fd_config.name = suite[i].name;
      auto detector = std::make_unique<fd::FreshnessDetector>(
          simulator, fd_config, suite[i].make_predictor(),
          suite[i].make_margin());
      detector->set_observer([&on_transition, i](TimePoint t, bool suspecting) {
        on_transition(i, t, suspecting);
      });
      monitor.attach_unowned(mux, *detector);
      detectors.push_back(std::move(detector));
    }
  }
  auto suspecting_count = [&bank, &detectors]() {
    if (bank != nullptr) return bank->suspecting_count();
    std::size_t n = 0;
    for (const auto& d : detectors) {
      if (d->suspecting()) ++n;
    }
    return n;
  };

  crash_layer.set_observer([&trackers, &config, run](TimePoint t,
                                                     bool crashed) {
    for (auto& tracker : trackers) {
      if (crashed) {
        tracker.process_crashed(t);
      } else {
        tracker.process_restored(t);
      }
    }
    if (config.crash_probe) config.crash_probe(run, 0, t, crashed);
  });

  monitored.start();
  monitor.start();

  // Telemetry tick: a repeating virtual-time event that emits a status
  // line whenever enough *wall* time has passed. Virtual runs execute
  // thousands of simulated seconds per wall second, so the tick is cheap
  // and the wall-clock rate limiter in ProgressEmitter does the pacing.
  std::function<void()> progress_tick;
  if (progress != nullptr) {
    const Duration tick_every = config.eta * 5;
    progress_tick = [&, run] {
      std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
      // A tick that loses the race simply skips this line; another run's
      // tick just emitted one.
      if (lock.owns_lock() && progress->emitter.due()) {
        const std::size_t suspecting = suspecting_count();
        const std::size_t started =
            progress->runs_started.load(std::memory_order_relaxed);
        const std::size_t done =
            progress->runs_done.load(std::memory_order_relaxed);
        const auto& hb_stats = transport.link_stats(kMonitored, kMonitor);
        if (obs::enabled()) {
          // Aggregated, not per-run, so concurrent runs never fight over
          // the gauges: runs in flight and completed-run crash totals.
          obs::instruments().experiment_run.set(static_cast<double>(started));
          obs::instruments().fd_suspecting.set(
              static_cast<double>(suspecting));
          // Per-detector live QoS gauges: this run won the tick, so it
          // publishes its lane states wholesale and stamps source_run.
          for (std::size_t i = 0; i < progress->lanes.size(); ++i) {
            const LaneGauges& g = progress->lanes[i];
            const bool susp = bank != nullptr ? bank->lane_suspecting(i)
                                              : detectors[i]->suspecting();
            const double delta = bank != nullptr
                                     ? bank->lane_delta_ms(i)
                                     : detectors[i]->current_delta_ms();
            g.suspect->set(susp ? 1.0 : 0.0);
            g.timeout_ms->set(delta);
            g.mistakes->set(static_cast<double>(trackers[i].tm_stats().count()));
            g.detections->set(
                static_cast<double>(trackers[i].detection_count()));
            g.recent_td_ms->set(trackers[i].recent_td_ms());
            g.recent_tm_ms->set(trackers[i].recent_tm_ms());
          }
          if (progress->source_run != nullptr) {
            progress->source_run->set(static_cast<double>(run));
          }
          if (progress->timer_lag_ms != nullptr) {
            TimePoint deadline = TimePoint::max();
            if (bank != nullptr) {
              deadline = bank->next_timer_deadline();
            } else {
              for (const auto& d : detectors) {
                deadline = std::min(deadline, d->next_timer_deadline());
              }
            }
            progress->timer_lag_ms->set(
                deadline == TimePoint::max()
                    ? std::numeric_limits<double>::quiet_NaN()
                    : (deadline - simulator.now()).to_millis_double());
          }
          // Refresh this invocation's /runs row. Crashes count completed
          // runs plus the reporting run (other in-flight runs report on
          // their own winning ticks).
          obs::RunStatus st;
          st.id = config.run_id;
          st.verb = config.run_verb;
          st.suite = config.suite_label;
          st.runs_total = config.runs;
          st.runs_started = started;
          st.runs_done = done;
          st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                       crash_layer.crash_count();
          st.heartbeats_sent = hb_stats.sent;
          st.detectors = suite.size();
          st.suspecting = suspecting;
          st.sim_time_s = simulator.now().to_seconds_double();
          obs::RunRegistry::global().update(st);
        }
        progress->emitter.emit(
            "run %zu/%zu (%zu done) t=%.0fs cycles=%lld/%lld crashes=%llu "
            "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
            run + 1, config.runs, done,
            simulator.now().to_seconds_double(),
            static_cast<long long>(heartbeater.cycles_sent()),
            static_cast<long long>(config.num_cycles),
            static_cast<unsigned long long>(crash_layer.crash_count()),
            static_cast<unsigned long long>(hb_stats.sent),
            static_cast<unsigned long long>(hb_stats.delivered),
            static_cast<unsigned long long>(hb_stats.sent -
                                            hb_stats.delivered),
            suspecting, suite.size());
      }
      simulator.schedule_after(tick_every, progress_tick);
    };
    simulator.schedule_after(tick_every, progress_tick);
  }

  simulator.run_until(run_end);

  for (auto& tracker : trackers) tracker.finalize(run_end);

  RunOutput out;
  out.crash_count = crash_layer.crash_count();
  const auto& hb_stats = transport.link_stats(kMonitored, kMonitor);
  out.hb_sent = hb_stats.sent;
  out.hb_delivered = hb_stats.delivered;
  if (chaos_net.has_value()) out.chaos = chaos_net->stats();
  if (bank != nullptr) {
    out.bank = bank->counters();
  } else {
    for (const auto& d : detectors) out.bank.add(d->counters());
  }
  out.trackers = std::move(trackers);

  if (progress != nullptr) {
    progress->runs_done.fetch_add(1, std::memory_order_relaxed);
    progress->crashes_done.fetch_add(out.crash_count,
                                     std::memory_order_relaxed);
  }
  FDQOS_LOG_INFO("qos run %zu/%zu: %llu crashes", run + 1, config.runs,
                 static_cast<unsigned long long>(out.crash_count));
  return out;
}

// ---------------------------------------------------------------------------
// LP-partitioned engine (SimEngine::kLp; sim/parallel_simulator.hpp and
// docs/pdes.md).
//
// Partition per run: LP0 owns the whole sender stack — heartbeater, crash
// injector, fault wrappers and every link RNG draw — and LPs 1..lps-1 each
// own a shard of the detector suite behind their own MultiPlexer. The only
// cross-LP channel is heartbeat delivery LP0→shard, whose lookahead is the
// link's minimum one-way delay, so shards run concurrently with the sender
// up to one delay floor ahead.
//
// QosTrackers are pure folds over timestamped records, so instead of
// notifying them live across LPs (which would need zero-lookahead channels
// and serialize everything), each shard records its (lane, t, suspecting)
// transitions and LP0 records the (t, crashed) ground truth; both replay
// into the trackers after the run. Trackers are per-lane, so cross-lane
// order is irrelevant and the replay is deterministic for every lps,
// lp_jobs and machine — byte-identical reports.

namespace {

// Suspect transition captured on a shard LP (chronological per shard).
struct TransitionRecord {
  std::size_t lane;  // global suite index
  TimePoint t;
  bool suspecting;
};

struct CrashRecord {
  TimePoint t;
  bool crashed;
};

// Greedy least-loaded assignment of predictor groups to shards: groups in
// creation order, each to the shard with the fewest lanes so far (ties →
// lowest shard id). A pure function of the suite, so the partition never
// depends on jobs, timing or machine.
std::vector<std::size_t> partition_groups(
    const std::vector<std::size_t>& group_lanes, std::size_t shard_count) {
  std::vector<std::size_t> shard_of_group(group_lanes.size());
  std::vector<std::size_t> load(shard_count, 0);
  for (std::size_t g = 0; g < group_lanes.size(); ++g) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_group[g] = best;
    load[best] += group_lanes[g];
  }
  return shard_of_group;
}

}  // namespace

RunOutput run_one_lp(const QosExperimentConfig& config,
                     const std::vector<fd::FdSpec>& suite,
                     const std::shared_ptr<const std::vector<Duration>>& trace,
                     const std::shared_ptr<const faultx::FaultSchedule>& faults,
                     std::size_t run, const Rng& base_rng, TimePoint run_end,
                     ProgressState* progress, std::size_t lp_jobs) {
  Rng run_rng = base_rng.fork(run);
  if (progress != nullptr) {
    progress->runs_started.fetch_add(1, std::memory_order_relaxed);
  }

  const std::size_t lps = config.lps == 0 ? 1 : config.lps;
  // lps = 1 keeps sender and detectors on one LP (the PDES baseline);
  // otherwise LP0 sends and every other LP holds one detector shard.
  const std::size_t shard_count = lps >= 2 ? lps - 1 : 1;
  const auto shard_lp = [lps](std::size_t s) { return lps >= 2 ? 1 + s : s; };

  sim::ParallelSimulator::Options po;
  po.lps = lps;
  po.jobs = lp_jobs;
  // One LP cannot backlog cross-LP mail, so the window cap buys nothing:
  // run the whole horizon as a single window (the PDES baseline then pays
  // no per-round coordination at all).
  if (lps < 2) po.max_window = Duration::zero();
  po.roles.push_back("sender");
  for (std::size_t i = 1; i < lps; ++i) po.roles.push_back("detectors");
  sim::ParallelSimulator psim(std::move(po));
  sim::Lp& sender_lp = psim.lp(0);

  net::LpSenderTransport transport(psim, 0, run_rng.fork("net"));
  transport.set_link(kMonitored, kMonitor,
                     make_link_config(config, trace, faults, run));

  // Transport-level faults wrap only the monitored node's view, exactly as
  // in the sequential engine; every fault draw stays on the sender LP.
  std::optional<faultx::FaultyTransport> chaos_net;
  net::Transport* monitored_net = &transport;
  if (faults != nullptr) {
    chaos_net.emplace(transport, faults, run_rng.fork("faultx"));
    monitored_net = &*chaos_net;
  }

  runtime::ProcessNode monitored(*monitored_net, kMonitored);
  auto& crash_layer = monitored.push(std::make_unique<runtime::SimCrashLayer>(
      sender_lp, runtime::SimCrashLayer::Config{config.mttc, config.ttr},
      run_rng.fork("crash")));
  runtime::HeartbeaterLayer::Config hb_config;
  hb_config.eta = config.eta;
  hb_config.self = kMonitored;
  hb_config.monitor = kMonitor;
  hb_config.max_cycles = config.num_cycles;
  auto& heartbeater = monitored.push(
      std::make_unique<runtime::HeartbeaterLayer>(sender_lp, hb_config));

  // lps = 1 keeps every layer on one LP, so observer callbacks already
  // fire in global simulation order — trackers update inline, exactly like
  // the sequential engine, and the record/merge machinery below is skipped
  // (the PDES baseline then costs what seq costs). Multi-LP runs defer.
  const bool single_lp = lps < 2;
  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  std::vector<fd::QosTracker> trackers;
  trackers.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    trackers.emplace_back(warmup_end);
  }

  // Ground-truth crash toggles: applied inline on the single-LP layout,
  // recorded on LP0 and replayed after the run otherwise. Either way the
  // crash_probe stream fires here, on the sender LP, in simulation order.
  std::vector<CrashRecord> crash_records;
  if (single_lp) {
    crash_layer.set_observer([&trackers, &config, run](TimePoint t,
                                                       bool crashed) {
      for (auto& tracker : trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
      if (config.crash_probe) config.crash_probe(run, 0, t, crashed);
    });
  } else {
    crash_layer.set_observer([&crash_records, &config, run](TimePoint t,
                                                            bool crashed) {
      crash_records.push_back({t, crashed});
      if (config.crash_probe) config.crash_probe(run, 0, t, crashed);
    });
  }

  // Partition the suite, predictor groups kept whole (a shared predictor
  // must see one arrival stream on one LP). Group ids replicate run_one's
  // first-seen-key order; the legacy engine shares nothing, so every lane
  // is its own group.
  std::vector<std::size_t> group_of(suite.size());
  std::vector<std::size_t> group_lanes;
  if (config.use_detector_bank) {
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const auto& key = suite[i].predictor_key;
      const auto it =
          key.empty() ? group_by_key.end() : group_by_key.find(key);
      if (it != group_by_key.end()) {
        group_of[i] = it->second;
      } else {
        group_of[i] = group_lanes.size();
        group_lanes.push_back(0);
        if (!key.empty()) group_by_key.emplace(key, group_of[i]);
      }
      ++group_lanes[group_of[i]];
    }
  } else {
    group_lanes.assign(suite.size(), 1);
    for (std::size_t i = 0; i < suite.size(); ++i) group_of[i] = i;
  }
  // More shards than predictor groups would leave some with a zero-lane
  // bank (DetectorBank requires width > 0): cap the shard count at the
  // group count — the surplus LPs simply stay idle for the whole run.
  const std::size_t active_shards = std::min(
      shard_count, std::max<std::size_t>(group_lanes.size(), 1));
  const std::vector<std::size_t> shard_of_group =
      partition_groups(group_lanes, active_shards);

  struct Shard {
    std::unique_ptr<net::LpShardTransport> transport;
    std::unique_ptr<runtime::ProcessNode> node;
    runtime::MultiPlexerLayer* mux = nullptr;  // owned by node
    std::unique_ptr<fd::DetectorBank> bank;
    std::vector<std::unique_ptr<fd::FreshnessDetector>> detectors;  // legacy
    std::vector<std::size_t> local_to_global;  // bank lane → suite index
    std::vector<TransitionRecord> transitions;
  };
  std::vector<Shard> shards(active_shards);
  // Live "how many lanes suspect right now" for the progress tick; shard
  // observers update it from their own LP threads.
  std::atomic<std::size_t> suspecting_now{0};

  for (std::size_t s = 0; s < active_shards; ++s) {
    Shard& shard = shards[s];
    shard.transport =
        std::make_unique<net::LpShardTransport>(psim, shard_lp(s));
    transport.add_shard(kMonitor, *shard.transport);
    shard.node =
        std::make_unique<runtime::ProcessNode>(*shard.transport, kMonitor);
    shard.mux =
        &shard.node->push(std::make_unique<runtime::MultiPlexerLayer>());

    Shard* sp = &shard;
    if (config.use_detector_bank) {
      fd::DetectorBank::Config bank_config;
      bank_config.eta = config.eta;
      bank_config.monitored = kMonitored;
      bank_config.cold_start_timeout = config.cold_start_timeout;
      bank_config.name = "qos-bank";
      shard.bank =
          std::make_unique<fd::DetectorBank>(psim.lp(shard_lp(s)), bank_config);
      // Suite order within the shard: the first lane of a group here is
      // also the group's globally-first spec (groups are never split), so
      // predictor construction matches run_one exactly.
      std::unordered_map<std::size_t, std::size_t> local_group;
      for (std::size_t i = 0; i < suite.size(); ++i) {
        if (shard_of_group[group_of[i]] != s) continue;
        std::size_t lg;
        const auto it = local_group.find(group_of[i]);
        if (it != local_group.end()) {
          lg = it->second;
        } else {
          lg = shard.bank->add_group(suite[i].make_predictor());
          local_group.emplace(group_of[i], lg);
        }
        shard.bank->add_lane(suite[i].name, lg, suite[i].make_margin());
        shard.local_to_global.push_back(i);
      }
      if (single_lp) {
        shard.bank->set_observer([sp, &trackers, &config, run,
                                  &suspecting_now](std::size_t lane,
                                                   TimePoint t, bool susp) {
          const std::size_t i = sp->local_to_global[lane];
          if (susp) {
            trackers[i].suspect_started(t);
            suspecting_now.fetch_add(1, std::memory_order_relaxed);
          } else {
            trackers[i].suspect_ended(t);
            suspecting_now.fetch_sub(1, std::memory_order_relaxed);
          }
          if (config.transition_probe) {
            config.transition_probe(run, i, t, susp);
          }
        });
      } else {
        shard.bank->set_observer(
            [sp, &suspecting_now](std::size_t lane, TimePoint t, bool susp) {
              sp->transitions.push_back({sp->local_to_global[lane], t, susp});
              if (susp) {
                suspecting_now.fetch_add(1, std::memory_order_relaxed);
              } else {
                suspecting_now.fetch_sub(1, std::memory_order_relaxed);
              }
            });
      }
      shard.node->attach_unowned(*shard.mux, *shard.bank);
    } else {
      for (std::size_t i = 0; i < suite.size(); ++i) {
        if (shard_of_group[group_of[i]] != s) continue;
        fd::FreshnessDetector::Config fd_config;
        fd_config.eta = config.eta;
        fd_config.monitored = kMonitored;
        fd_config.cold_start_timeout = config.cold_start_timeout;
        fd_config.name = suite[i].name;
        auto detector = std::make_unique<fd::FreshnessDetector>(
            psim.lp(shard_lp(s)), fd_config, suite[i].make_predictor(),
            suite[i].make_margin());
        if (single_lp) {
          detector->set_observer([&trackers, &config, run, i,
                                  &suspecting_now](TimePoint t, bool susp) {
            if (susp) {
              trackers[i].suspect_started(t);
              suspecting_now.fetch_add(1, std::memory_order_relaxed);
            } else {
              trackers[i].suspect_ended(t);
              suspecting_now.fetch_sub(1, std::memory_order_relaxed);
            }
            if (config.transition_probe) {
              config.transition_probe(run, i, t, susp);
            }
          });
        } else {
          detector->set_observer(
              [sp, i, &suspecting_now](TimePoint t, bool susp) {
                sp->transitions.push_back({i, t, susp});
                if (susp) {
                  suspecting_now.fetch_add(1, std::memory_order_relaxed);
                } else {
                  suspecting_now.fetch_sub(1, std::memory_order_relaxed);
                }
              });
        }
        shard.node->attach_unowned(*shard.mux, *detector);
        shard.detectors.push_back(std::move(detector));
      }
    }
  }

  // The one cross-LP channel: heartbeat delivery. Its lookahead is the
  // link's hard delay floor, already shrunk by chaos clock jumps
  // (FaultyDelay::min_delay) and zero for unconfigured/floorless links —
  // the coordinator's stall rule keeps even that case correct.
  if (lps >= 2) {
    const Duration lookahead =
        transport.link_lookahead(kMonitored, kMonitor);
    for (std::size_t s = 0; s < active_shards; ++s) {
      psim.set_lookahead(0, shard_lp(s), lookahead);
    }
  }

  monitored.start();
  for (auto& shard : shards) shard.node->start();

  // Reduced LP-mode telemetry tick on the sender LP: mid-run shard state
  // (per-lane gauges, timer deadlines) belongs to other LPs, so the tick
  // publishes only sender-local counts and the shard-maintained atomic
  // suspecting count. See docs/pdes.md.
  std::function<void()> progress_tick;
  if (progress != nullptr) {
    const Duration tick_every = config.eta * 5;
    progress_tick = [&, run] {
      std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
      if (lock.owns_lock() && progress->emitter.due()) {
        const std::size_t suspecting =
            suspecting_now.load(std::memory_order_relaxed);
        const std::size_t started =
            progress->runs_started.load(std::memory_order_relaxed);
        const std::size_t done =
            progress->runs_done.load(std::memory_order_relaxed);
        const auto hb_stats = transport.link_stats(kMonitored, kMonitor);
        if (obs::enabled()) {
          obs::instruments().experiment_run.set(static_cast<double>(started));
          obs::instruments().fd_suspecting.set(
              static_cast<double>(suspecting));
          obs::RunStatus st;
          st.id = config.run_id;
          st.verb = config.run_verb;
          st.suite = config.suite_label;
          st.runs_total = config.runs;
          st.runs_started = started;
          st.runs_done = done;
          st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                       crash_layer.crash_count();
          st.heartbeats_sent = hb_stats.sent;
          st.detectors = suite.size();
          st.suspecting = suspecting;
          st.sim_time_s = sender_lp.now().to_seconds_double();
          obs::RunRegistry::global().update(st);
        }
        progress->emitter.emit(
            "run %zu/%zu (%zu done) t=%.0fs cycles=%lld/%lld crashes=%llu "
            "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
            run + 1, config.runs, done, sender_lp.now().to_seconds_double(),
            static_cast<long long>(heartbeater.cycles_sent()),
            static_cast<long long>(config.num_cycles),
            static_cast<unsigned long long>(crash_layer.crash_count()),
            static_cast<unsigned long long>(hb_stats.sent),
            static_cast<unsigned long long>(hb_stats.delivered),
            static_cast<unsigned long long>(hb_stats.sent -
                                            hb_stats.delivered),
            suspecting, suite.size());
      }
      sender_lp.schedule_after(tick_every, progress_tick);
    };
    sender_lp.schedule_after(tick_every, progress_tick);
  }

  psim.run_until(run_end);

  // Multi-LP: replay the recorded streams into the trackers. A lane's
  // transitions live on exactly one shard, appended in that LP's execution
  // order — chronological — so a per-lane two-stream merge with the crash
  // toggles reproduces the live update sequence. Equal-instant ties replay
  // crash-first (fixed, engine-independent order; the determinism suite
  // pins the resulting bytes). Single-LP runs updated inline above.
  if (!single_lp) {
    std::vector<std::vector<const TransitionRecord*>> by_lane(suite.size());
    for (const auto& shard : shards) {
      for (const auto& rec : shard.transitions) {
        by_lane[rec.lane].push_back(&rec);
      }
    }
    for (std::size_t i = 0; i < suite.size(); ++i) {
      fd::QosTracker& tracker = trackers[i];
      const auto& lane = by_lane[i];
      std::size_t c = 0;
      std::size_t t = 0;
      while (c < crash_records.size() || t < lane.size()) {
        const bool take_crash =
            t >= lane.size() ||
            (c < crash_records.size() && crash_records[c].t <= lane[t]->t);
        if (take_crash) {
          if (crash_records[c].crashed) {
            tracker.process_crashed(crash_records[c].t);
          } else {
            tracker.process_restored(crash_records[c].t);
          }
          ++c;
        } else {
          if (lane[t]->suspecting) {
            tracker.suspect_started(lane[t]->t);
          } else {
            tracker.suspect_ended(lane[t]->t);
          }
          if (config.transition_probe) {
            // Note: under this layout the probe fires post-run, grouped by
            // lane (time-ordered within a lane), not globally interleaved.
            config.transition_probe(run, i, lane[t]->t, lane[t]->suspecting);
          }
          ++t;
        }
      }
    }
  }
  for (auto& tracker : trackers) tracker.finalize(run_end);

  RunOutput out;
  out.crash_count = crash_layer.crash_count();
  const auto hb_stats = transport.link_stats(kMonitored, kMonitor);
  out.hb_sent = hb_stats.sent;
  out.hb_delivered = hb_stats.delivered;
  if (chaos_net.has_value()) out.chaos = chaos_net->stats();
  for (const auto& shard : shards) {
    if (shard.bank != nullptr) out.bank.add(shard.bank->counters());
    for (const auto& d : shard.detectors) out.bank.add(d->counters());
  }
  out.sim = psim.stats();
  out.trackers = std::move(trackers);

  if (progress != nullptr) {
    progress->runs_done.fetch_add(1, std::memory_order_relaxed);
    progress->crashes_done.fetch_add(out.crash_count,
                                     std::memory_order_relaxed);
  }
  FDQOS_LOG_INFO(
      "qos run %zu/%zu (lp engine, %zu lps): %llu crashes", run + 1,
      config.runs, lps, static_cast<unsigned long long>(out.crash_count));
  return out;
}

// ---------------------------------------------------------------------------
// Fleet engine (fd::FleetBank; docs/fleet.md).
//
// `endpoints` independent monitored processes, each with its own link,
// crash injector and full detector suite, sharded into contiguous blocks.
// Each (run, shard) unit owns one simulator (one LP under kLp), one
// FleetBank and the block's endpoint stacks. Endpoint e's whole stochastic
// tree forks from fleet_endpoint_seed(seed, e) with the same fork names as
// run_one, and every endpoint uses the local node-id pair (0, 1) on its
// own transport — so endpoint e of any fleet run is bit-for-bit a
// standalone run seeded with its fleet seed, regardless of M, the shard
// count, jobs or engine. The equivalence suite (`ctest -L fleet`) pins it.

namespace {

// One monitored endpoint's stack inside a shard.
struct FleetEndpoint {
  std::unique_ptr<net::SimTransport> transport;
  std::optional<faultx::FaultyTransport> chaos_net;
  std::unique_ptr<runtime::ProcessNode> monitored;
  std::unique_ptr<runtime::ProcessNode> monitor;
  runtime::SimCrashLayer* crash = nullptr;           // owned by `monitored`
  runtime::HeartbeaterLayer* heartbeater = nullptr;  // owned by `monitored`
  runtime::MultiPlexerLayer* mux = nullptr;          // owned by `monitor`
  fd::DetectorBank* bank = nullptr;  // owned by the fleet's arena
  std::vector<fd::QosTracker> trackers;  // index-aligned with the suite
};

struct FleetShardContext {
  std::unique_ptr<fd::FleetBank> fleet;
  // deque: endpoint addresses must stay stable while later endpoints are
  // appended (bank/crash observers capture them).
  std::deque<FleetEndpoint> endpoints;
  std::function<void()> progress_tick;  // keeps the tick closure alive
};

void build_fleet_shard(
    sim::Simulator& simulator, const QosExperimentConfig& config,
    const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t ep_begin, std::size_t ep_end,
    FleetShardContext& ctx) {
  fd::FleetBank::Config fleet_config;
  fleet_config.eta = config.eta;
  fleet_config.cold_start_timeout = config.cold_start_timeout;
  fleet_config.name = "qos-fleet";
  fleet_config.expected_endpoints = ep_end - ep_begin;
  ctx.fleet = std::make_unique<fd::FleetBank>(simulator, fleet_config);

  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  for (std::size_t e = ep_begin; e < ep_end; ++e) {
    FleetEndpoint& ep = ctx.endpoints.emplace_back();
    // The endpoint's RNG tree is rooted exactly like a standalone run
    // seeded with its fleet seed; every named fork below matches run_one.
    Rng ep_rng = Rng(fleet_endpoint_seed(config.seed, e)).fork(run);
    ep.transport =
        std::make_unique<net::SimTransport>(simulator, ep_rng.fork("net"));
    ep.transport->set_link(kMonitored, kMonitor,
                           make_link_config(config, trace, faults, run));
    net::Transport* monitored_net = ep.transport.get();
    if (faults != nullptr) {
      ep.chaos_net.emplace(*ep.transport, faults, ep_rng.fork("faultx"));
      monitored_net = &*ep.chaos_net;
    }

    ep.monitored =
        std::make_unique<runtime::ProcessNode>(*monitored_net, kMonitored);
    ep.crash = &ep.monitored->push(std::make_unique<runtime::SimCrashLayer>(
        simulator, runtime::SimCrashLayer::Config{config.mttc, config.ttr},
        ep_rng.fork("crash")));
    runtime::HeartbeaterLayer::Config hb_config;
    hb_config.eta = config.eta;
    hb_config.self = kMonitored;
    hb_config.monitor = kMonitor;
    hb_config.max_cycles = config.num_cycles;
    ep.heartbeater = &ep.monitored->push(
        std::make_unique<runtime::HeartbeaterLayer>(simulator, hb_config));

    ep.monitor =
        std::make_unique<runtime::ProcessNode>(*ep.transport, kMonitor);
    ep.mux = &ep.monitor->push(std::make_unique<runtime::MultiPlexerLayer>());

    // Member bank: the same group/lane assembly as run_one. Per-node
    // attachment — the member sits on its endpoint's own stack, so the
    // shared monitored id never needs fleet routing.
    fd::DetectorBank& bank = ctx.fleet->add_member(kMonitored, "qos-bank");
    bank.reserve_lanes(suite.size());
    std::unordered_map<std::string, std::size_t> group_by_key;
    for (const auto& spec : suite) {
      std::size_t group;
      const auto it = spec.predictor_key.empty()
                          ? group_by_key.end()
                          : group_by_key.find(spec.predictor_key);
      if (it != group_by_key.end()) {
        group = it->second;
      } else {
        group = bank.add_group(spec.make_predictor());
        if (!spec.predictor_key.empty()) {
          group_by_key.emplace(spec.predictor_key, group);
        }
      }
      bank.add_lane(spec.name, group, spec.make_margin());
    }
    ep.bank = &bank;

    ep.trackers.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ep.trackers.emplace_back(warmup_end);
    }
    FleetEndpoint* epp = &ep;
    const std::size_t width = suite.size();
    bank.set_observer([epp, &config, run, e, width](std::size_t lane,
                                                    TimePoint t, bool susp) {
      if (susp) {
        epp->trackers[lane].suspect_started(t);
      } else {
        epp->trackers[lane].suspect_ended(t);
      }
      if (config.transition_probe) {
        config.transition_probe(run, e * width + lane, t, susp);
      }
    });
    ep.crash->set_observer([epp, &config, run, e](TimePoint t, bool crashed) {
      for (auto& tracker : epp->trackers) {
        if (crashed) {
          tracker.process_crashed(t);
        } else {
          tracker.process_restored(t);
        }
      }
      if (config.crash_probe) config.crash_probe(run, e, t, crashed);
    });
    ep.monitor->attach_unowned(*ep.mux, bank);

    // Start order within an endpoint matches run_one (monitored, then
    // monitor — which runs the member's begin_cycle(0) inline).
    // Cross-endpoint interleaving is irrelevant: endpoints share no state.
    ep.monitored->start();
    ep.monitor->start();
  }
  // The shared cycle tick is scheduled after every member computed cycle 0
  // and before the simulator runs, so at each σ_k the begin-cycle work
  // still precedes any same-instant heartbeat send — every member keeps
  // its standalone event order.
  ctx.fleet->start();
}

FleetShardOutput drain_fleet_shard(FleetShardContext& ctx, TimePoint run_end) {
  FleetShardOutput out;
  out.fleet = ctx.fleet->counters();
  out.bank = ctx.fleet->member_counters();
  out.trackers.reserve(ctx.endpoints.size());
  out.crash_count.reserve(ctx.endpoints.size());
  out.hb_sent.reserve(ctx.endpoints.size());
  out.hb_delivered.reserve(ctx.endpoints.size());
  for (FleetEndpoint& ep : ctx.endpoints) {
    for (auto& tracker : ep.trackers) tracker.finalize(run_end);
    out.crash_count.push_back(ep.crash->crash_count());
    const auto& hb = ep.transport->link_stats(kMonitored, kMonitor);
    out.hb_sent.push_back(hb.sent);
    out.hb_delivered.push_back(hb.delivered);
    // Per-node attachment delivers heartbeats straight into each member
    // (never through the fleet's routed path), so the shard's heartbeat
    // counter is accounted here from the links — fdqos_fleet_heartbeats_-
    // total stays meaningful in experiment mode, not just raw-coordinator.
    out.fleet.heartbeats += hb.delivered;
    if (ep.chaos_net.has_value()) {
      const auto stats = ep.chaos_net->stats();
      out.chaos.sent += stats.sent;
      out.chaos.fault_dropped += stats.fault_dropped;
      out.chaos.duplicated += stats.duplicated;
    }
    out.trackers.push_back(std::move(ep.trackers));
  }
  return out;
}

// Fleet telemetry tick, installed on one shard per invocation (run 0 is
// usually first but any shard 0 may win the emitter's rate limiter). A
// shard can hold thousands of endpoint stacks, so the tick publishes
// shard-aggregate numbers — the emitted crash/heartbeat figures are the
// reporting shard's own block, a sample, not a fleet total; the final
// report and /runs row carry the totals.
void install_fleet_progress(const QosExperimentConfig& config,
                            ProgressState* progress, FleetShardContext& ctx,
                            sim::Simulator& simulator, std::size_t run,
                            std::size_t suite_width, std::size_t ep_begin) {
  const Duration tick_every = config.eta * 5;
  ctx.progress_tick = [&config, progress, &ctx, &simulator, run, suite_width,
                       ep_begin, tick_every] {
    std::unique_lock<std::mutex> lock(progress->mu, std::try_to_lock);
    if (lock.owns_lock() && progress->emitter.due()) {
      const std::size_t suspecting = ctx.fleet->suspecting_count();
      const std::size_t started =
          progress->runs_started.load(std::memory_order_relaxed);
      const std::size_t done =
          progress->runs_done.load(std::memory_order_relaxed);
      std::uint64_t sent = 0;
      std::uint64_t delivered = 0;
      std::uint64_t crashes = 0;
      for (const FleetEndpoint& ep : ctx.endpoints) {
        const auto& hb = ep.transport->link_stats(kMonitored, kMonitor);
        sent += hb.sent;
        delivered += hb.delivered;
        crashes += ep.crash->crash_count();
      }
      if (obs::enabled()) {
        obs::instruments().experiment_run.set(static_cast<double>(started));
        obs::instruments().fd_suspecting.set(static_cast<double>(suspecting));
        obs::RunStatus st;
        st.id = config.run_id;
        st.verb = config.run_verb;
        st.suite = config.suite_label;
        st.runs_total = config.runs;
        st.runs_started = started;
        st.runs_done = done;
        st.crashes = progress->crashes_done.load(std::memory_order_relaxed) +
                     crashes;
        st.heartbeats_sent = sent;
        st.detectors = suite_width * config.endpoints;
        st.suspecting = suspecting;
        st.sim_time_s = simulator.now().to_seconds_double();
        obs::RunRegistry::global().update(st);
      }
      progress->emitter.emit(
          "run %zu/%zu (%zu done) t=%.0fs fleet ep[%zu..%zu): crashes=%llu "
          "hb sent=%llu delivered=%llu lost=%llu suspecting=%zu/%zu",
          run + 1, config.runs, done, simulator.now().to_seconds_double(),
          ep_begin, ep_begin + ctx.endpoints.size(),
          static_cast<unsigned long long>(crashes),
          static_cast<unsigned long long>(sent),
          static_cast<unsigned long long>(delivered),
          static_cast<unsigned long long>(sent - delivered), suspecting,
          ctx.fleet->total_lanes());
    }
    simulator.schedule_after(tick_every, ctx.progress_tick);
  };
  simulator.schedule_after(tick_every, ctx.progress_tick);
}

}  // namespace

std::size_t fleet_shard_begin(std::size_t endpoints, std::size_t shards,
                              std::size_t s) {
  const std::size_t base = endpoints / shards;
  const std::size_t rem = endpoints % shards;
  return s * base + std::min(s, rem);
}

FleetShardOutput run_fleet_shard(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, std::size_t shard, TimePoint run_end,
    ProgressState* progress) {
  const std::size_t ep_begin = fleet_shard_begin(config.endpoints, shards, shard);
  const std::size_t ep_end =
      fleet_shard_begin(config.endpoints, shards, shard + 1);
  sim::Simulator simulator;
  FleetShardContext ctx;
  build_fleet_shard(simulator, config, suite, trace, faults, run, ep_begin,
                    ep_end, ctx);
  if (progress != nullptr && shard == 0) {
    install_fleet_progress(config, progress, ctx, simulator, run, suite.size(),
                           ep_begin);
  }
  simulator.run_until(run_end);
  return drain_fleet_shard(ctx, run_end);
}

std::vector<FleetShardOutput> run_fleet_run_lp(
    const QosExperimentConfig& config, const std::vector<fd::FdSpec>& suite,
    const std::shared_ptr<const std::vector<Duration>>& trace,
    const std::shared_ptr<const faultx::FaultSchedule>& faults,
    std::size_t run, std::size_t shards, TimePoint run_end,
    ProgressState* progress, std::size_t lp_jobs) {
  sim::ParallelSimulator::Options po;
  po.lps = shards;
  po.jobs = lp_jobs;
  po.max_window = Duration::zero();
  po.roles.assign(shards, "fleet");
  sim::ParallelSimulator psim(std::move(po));

  std::vector<FleetShardContext> ctxs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    build_fleet_shard(psim.lp(s), config, suite, trace, faults, run,
                      fleet_shard_begin(config.endpoints, shards, s),
                      fleet_shard_begin(config.endpoints, shards, s + 1),
                      ctxs[s]);
  }
  if (progress != nullptr) {
    install_fleet_progress(config, progress, ctxs[0], psim.lp(0), run,
                           suite.size(), 0);
  }
  psim.run_until(run_end);

  std::vector<FleetShardOutput> outs;
  outs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    outs.push_back(drain_fleet_shard(ctxs[s], run_end));
  }
  outs[0].sim = psim.stats();
  return outs;
}

}  // namespace fdqos::exp::detail
