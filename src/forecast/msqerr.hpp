// Predictor accuracy evaluation (paper §5.1, Table 3).
//
// Feeds a delay series to a predictor one observation at a time and
// accumulates the squared one-step-ahead prediction errors. Smaller msqerr
// means a more accurate predictor.
#pragma once

#include <cstddef>
#include <span>

#include "forecast/predictor.hpp"

namespace fdqos::forecast {

struct AccuracyResult {
  double msqerr = 0.0;       // mean of squared one-step errors
  double mean_abs_err = 0.0; // mean |error| — extra diagnostic
  std::size_t evaluated = 0; // number of (prediction, observation) pairs
};

// Evaluates one-step-ahead accuracy over `series`. The first `warmup`
// observations prime the predictor without being scored (the paper scores
// from the second observation on; warmup = 1 reproduces that).
AccuracyResult evaluate_accuracy(Predictor& predictor,
                                 std::span<const double> series,
                                 std::size_t warmup = 1);

}  // namespace fdqos::forecast
