// The four closed-form predictors from paper §3.1: LAST, MEAN, WINMEAN(N)
// and LPF(β). All have O(1) update and O(1) forecast cost (§5.3 measures
// exactly this property — see bench_overhead_microbench).
#pragma once

#include <vector>

#include "forecast/predictor.hpp"

namespace fdqos::forecast {

// pred_{k+1} = obs_n — the most recent observation.
class LastPredictor final : public Predictor {
 public:
  void observe(double obs) override;
  double predict() const override { return last_; }
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override;
  std::unique_ptr<Predictor> make_fresh() const override;

 private:
  double last_ = 0.0;
  std::size_t n_ = 0;
};

// pred_{k+1} = (Σ obs_j) / n — running mean of all observations.
class MeanPredictor final : public Predictor {
 public:
  void observe(double obs) override;
  double predict() const override { return n_ > 0 ? mean_ : 0.0; }
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override;
  std::unique_ptr<Predictor> make_fresh() const override;

 private:
  double mean_ = 0.0;
  std::size_t n_ = 0;
};

// pred_{k+1} = mean of the last N observations; equals MEAN while n < N
// (per the paper's definition).
class WinMeanPredictor final : public Predictor {
 public:
  explicit WinMeanPredictor(std::size_t window);

  void observe(double obs) override;
  double predict() const override;
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<Predictor> make_fresh() const override;

  std::size_t window() const { return ring_.size(); }

 private:
  std::string name_;
  std::vector<double> ring_;   // circular buffer of the last `window` obs
  std::size_t n_ = 0;          // total observations seen
  double window_sum_ = 0.0;    // sum of the values currently in the ring
};

// Exponential smoothing (low-pass filter):
//   pred_{k+1} = (1-β)·pred_k + β·obs_n, with pred after the first
// observation initialized to that observation.
class LpfPredictor final : public Predictor {
 public:
  explicit LpfPredictor(double beta);

  void observe(double obs) override;
  double predict() const override { return n_ > 0 ? pred_ : 0.0; }
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<Predictor> make_fresh() const override;

  double beta() const { return beta_; }

 private:
  std::string name_;
  double beta_;
  double pred_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace fdqos::forecast
