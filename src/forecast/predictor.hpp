// One-step-ahead delay predictors (paper §3.1).
//
// A predictor consumes the stream `obs = [obs_1 .. obs_n]` of observed
// heartbeat transmission delays (in milliseconds, in *arrival* order — the
// list is not ordered by sequence number because heartbeats can be lost and
// reordered) and forecasts the delay of the next heartbeat. The failure
// detector adds a safety margin to this forecast to form its timeout.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace fdqos::forecast {

class Predictor {
 public:
  virtual ~Predictor() = default;

  // Record a newly observed transmission delay.
  virtual void observe(double obs) = 0;

  // Forecast of the next delay given everything observed so far.
  // Contract: callable at any time; returns 0 before the first observation
  // (the detector's safety margin covers the cold-start window).
  virtual double predict() const = 0;

  virtual std::size_t observation_count() const = 0;

  virtual const std::string& name() const = 0;

  // Fresh instance with identical parameters and no observations.
  virtual std::unique_ptr<Predictor> make_fresh() const = 0;
};

using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

}  // namespace fdqos::forecast
