// Small dense linear algebra for ARMA estimation.
//
// Problem sizes here are tiny (normal equations of order p+q+1 ≤ ~25), so a
// plain row-major matrix with Cholesky solves is both sufficient and easy to
// verify.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fdqos::forecast {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  static Matrix identity(std::size_t n);
  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves A·x = b for symmetric positive-definite A via Cholesky.
// Returns false (x unspecified) if A is not positive definite.
bool cholesky_solve(const Matrix& a, std::span<const double> b,
                    std::vector<double>& x);

// Ordinary least squares: minimizes ‖X·beta − y‖². Solves the normal
// equations with a small ridge term (relative to trace(XᵀX)) for numerical
// robustness against collinear regressors. Returns false on failure.
bool least_squares(const Matrix& x, std::span<const double> y,
                   std::vector<double>& beta);

}  // namespace fdqos::forecast
