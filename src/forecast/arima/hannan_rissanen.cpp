#include "forecast/arima/hannan_rissanen.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "forecast/arima/difference.hpp"
#include "forecast/arima/levinson.hpp"
#include "forecast/arima/linalg.hpp"
#include "stats/autocorrelation.hpp"

namespace fdqos::forecast {
namespace {

// Pure-mean "ARMA(0,0)" fit.
ArmaFitResult fit_constant(std::span<const double> w) {
  ArmaFitResult result;
  result.ok = !w.empty();
  if (!result.ok) result.error = "empty series";
  result.coeffs.intercept = stats::mean(w);
  result.residual_variance = stats::variance(w);
  result.rows = w.size();
  return result;
}

}  // namespace

ArmaFitResult fit_arma_hannan_rissanen(std::span<const double> w,
                                       std::size_t p, std::size_t q) {
  if (p == 0 && q == 0) return fit_constant(w);

  ArmaFitResult result;
  const std::size_t n = w.size();

  // Stage 1: long AR for innovation estimates. The long order must dominate
  // both p and q but stay small relative to n.
  const std::size_t want_m = std::max<std::size_t>(20, p + q + 10);
  result.error = "series too short for long-AR stage";
  if (n < 4 * (p + q + 1) || n / 4 == 0) return result;
  const std::size_t m = std::min(want_m, n / 4);
  if (m == 0 || n <= m + q + p + 2) return result;

  const double mu = stats::mean(w);
  std::vector<double> x(w.begin(), w.end());
  for (auto& v : x) v -= mu;

  const ArFit long_ar = fit_ar_yule_walker(x, m);

  // Residuals â_t for t in [m, n).
  std::vector<double> a(n, 0.0);
  for (std::size_t t = m; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t i = 1; i <= m; ++i) pred += long_ar.phi[i - 1] * x[t - i];
    a[t] = x[t] - pred;
  }

  // Stage 2: OLS of w_t on [1, w_{t-1..t-p}, â_{t-1..t-q}] for t where every
  // regressor is defined: t ≥ m + q (residuals) and t ≥ p (lags; m ≥ p here
  // only if m ≥ p — enforce with start).
  const std::size_t start = std::max(m + q, p);
  result.error = "too few stage-2 regression rows";
  if (n <= start) return result;
  const std::size_t rows = n - start;
  const std::size_t k = 1 + p + q;
  if (rows < k + 2) return result;

  Matrix design(rows, k);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = start + r;
    y[r] = w[t];
    design.at(r, 0) = 1.0;
    for (std::size_t i = 1; i <= p; ++i) design.at(r, i) = w[t - i];
    for (std::size_t j = 1; j <= q; ++j) design.at(r, p + j) = a[t - j];
  }

  std::vector<double> beta;
  result.error = "singular least-squares system";
  if (!least_squares(design, y, beta)) return result;

  result.coeffs.intercept = beta[0];
  result.coeffs.ar.assign(beta.begin() + 1, beta.begin() + 1 + p);
  result.coeffs.ma.assign(beta.begin() + 1 + p, beta.end());
  result.error = "non-finite coefficients";
  for (double b : beta) {
    if (!std::isfinite(b)) return result;
  }

  // In-sample residual variance of the stage-2 fit.
  double ss = 0.0;
  const std::vector<double> fitted = design * beta;
  for (std::size_t r = 0; r < rows; ++r) {
    const double e = y[r] - fitted[r];
    ss += e * e;
  }
  result.residual_variance = ss / static_cast<double>(rows);
  result.rows = rows;
  result.ok = true;
  result.error = nullptr;
  return result;
}

ArmaFitResult fit_arima(std::span<const double> z, const ArimaOrder& order) {
  if (z.size() <= order.d) {
    ArmaFitResult result;
    result.error = "series shorter than differencing order";
    return result;
  }
  const std::vector<double> w = difference(z, order.d);
  return fit_arma_hannan_rissanen(w, order.p, order.q);
}

}  // namespace fdqos::forecast
