// Differencing operators for the "I" in ARIMA.
//
// ∇Z_t = Z_t − Z_{t−1}; ∇^d applies d times. Forecasts of the differenced
// series are mapped back to the original scale by integrating against the
// most recent values at each differencing level (see DifferenceState).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fdqos::forecast {

// Returns ∇^d(series); the result has series.size() - d elements.
std::vector<double> difference(std::span<const double> series, std::size_t d);

// Incremental differencing / integration state.
//
// Maintains the latest value at each differencing level 0..d. Pushing a new
// raw observation yields the new d-th difference; integrating a forecast of
// the d-th difference yields a forecast on the original scale.
class DifferenceState {
 public:
  explicit DifferenceState(std::size_t d);

  std::size_t order() const { return last_.size() - 1; }
  // Number of raw observations pushed so far.
  std::size_t count() const { return n_; }
  // True once enough observations have been pushed to form a d-th
  // difference (count() > d).
  bool ready() const { return n_ > order(); }

  // Push a raw observation; returns the new d-th difference when ready()
  // becomes/is true, otherwise 0 (callers must check ready()).
  double push(double z);

  // Map a one-step forecast of the d-th difference back to the original
  // scale: ẑ = ŵ + last_[d−1] + ... + last_[0] chain.
  double integrate_forecast(double w_hat) const;

  void reset();

 private:
  std::vector<double> last_;  // last_[k] = latest value of ∇^k Z
  std::size_t n_ = 0;
};

}  // namespace fdqos::forecast
