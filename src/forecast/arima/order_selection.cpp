#include "forecast/arima/order_selection.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "exec/thread_pool.hpp"
#include "forecast/arima/hannan_rissanen.hpp"

namespace fdqos::forecast {
namespace {

// One-step msqerr on the holdout: prime on train, then score each holdout
// point before observing it.
double holdout_msqerr(ArimaModel model, std::span<const double> train,
                      std::span<const double> test) {
  model.prime(train);
  double ss = 0.0;
  for (double z : test) {
    const double err = z - model.forecast();
    ss += err * err;
    model.observe(z);
  }
  if (test.empty()) return std::numeric_limits<double>::infinity();
  const double msq = ss / static_cast<double>(test.size());
  return std::isfinite(msq) ? msq : std::numeric_limits<double>::infinity();
}

}  // namespace

OrderSelectionResult select_arima_order(std::span<const double> series,
                                        const OrderSelectionConfig& config) {
  FDQOS_REQUIRE(series.size() >= 32);
  FDQOS_REQUIRE(config.train_fraction > 0.0 && config.train_fraction < 1.0);

  const auto split = static_cast<std::size_t>(
      static_cast<double>(series.size()) * config.train_fraction);
  const std::span<const double> train = series.subspan(0, split);
  const std::span<const double> test = series.subspan(split);

  OrderSelectionResult result;
  result.best_msqerr = std::numeric_limits<double>::infinity();

  // The grid is flat-indexed in (p, d, q) scan order so every candidate —
  // including failed fits — owns one pre-reserved slot and workers never
  // contend: idx = (p·(d_max+1) + d)·(q_max+1) + q.
  const std::size_t d_span = config.max_order.d + 1;
  const std::size_t q_span = config.max_order.q + 1;
  const std::size_t grid = (config.max_order.p + 1) * d_span * q_span;
  result.candidates.resize(grid);

  exec::parallel_for(
      grid,
      [&](std::size_t idx) {
        OrderCandidate& cand = result.candidates[idx];
        cand.order = ArimaOrder{idx / (d_span * q_span),
                                (idx / q_span) % d_span, idx % q_span};
        const ArmaFitResult fit = fit_arima(train, cand.order);
        if (fit.ok) {
          cand.fitted = true;
          cand.holdout_msqerr =
              holdout_msqerr(ArimaModel(cand.order, fit.coeffs), train, test);
        } else {
          cand.fail_reason = fit.error;
        }
      },
      config.jobs);

  // Deterministic argmin after the join: the strict `<` over scan order
  // makes the lowest (p, d, q) win msqerr ties, matching the serial loop
  // at every jobs value.
  for (const OrderCandidate& cand : result.candidates) {
    if (cand.fitted && cand.holdout_msqerr < result.best_msqerr) {
      result.best_msqerr = cand.holdout_msqerr;
      result.best = cand.order;
    }
  }
  return result;
}

}  // namespace fdqos::forecast
