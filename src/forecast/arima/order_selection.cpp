#include "forecast/arima/order_selection.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "forecast/arima/hannan_rissanen.hpp"

namespace fdqos::forecast {
namespace {

// One-step msqerr on the holdout: prime on train, then score each holdout
// point before observing it.
double holdout_msqerr(ArimaModel model, std::span<const double> train,
                      std::span<const double> test) {
  model.prime(train);
  double ss = 0.0;
  for (double z : test) {
    const double err = z - model.forecast();
    ss += err * err;
    model.observe(z);
  }
  if (test.empty()) return std::numeric_limits<double>::infinity();
  const double msq = ss / static_cast<double>(test.size());
  return std::isfinite(msq) ? msq : std::numeric_limits<double>::infinity();
}

}  // namespace

OrderSelectionResult select_arima_order(std::span<const double> series,
                                        const OrderSelectionConfig& config) {
  FDQOS_REQUIRE(series.size() >= 32);
  FDQOS_REQUIRE(config.train_fraction > 0.0 && config.train_fraction < 1.0);

  const auto split = static_cast<std::size_t>(
      static_cast<double>(series.size()) * config.train_fraction);
  const std::span<const double> train = series.subspan(0, split);
  const std::span<const double> test = series.subspan(split);

  OrderSelectionResult result;
  result.best_msqerr = std::numeric_limits<double>::infinity();

  for (std::size_t p = 0; p <= config.max_order.p; ++p) {
    for (std::size_t d = 0; d <= config.max_order.d; ++d) {
      for (std::size_t q = 0; q <= config.max_order.q; ++q) {
        OrderCandidate cand;
        cand.order = ArimaOrder{p, d, q};
        const ArmaFitResult fit = fit_arima(train, cand.order);
        if (fit.ok) {
          cand.fitted = true;
          cand.holdout_msqerr =
              holdout_msqerr(ArimaModel(cand.order, fit.coeffs), train, test);
          if (cand.holdout_msqerr < result.best_msqerr) {
            result.best_msqerr = cand.holdout_msqerr;
            result.best = cand.order;
          }
        }
        result.candidates.push_back(cand);
      }
    }
  }
  return result;
}

}  // namespace fdqos::forecast
