#include "forecast/arima/acf.hpp"

#include "common/assert.hpp"
#include "forecast/arima/levinson.hpp"
#include "stats/autocorrelation.hpp"

namespace fdqos::forecast {

std::vector<double> sample_acf(std::span<const double> series,
                               std::size_t max_lag) {
  return stats::acf(series, max_lag);
}

std::vector<double> sample_pacf(std::span<const double> series,
                                std::size_t max_lag) {
  FDQOS_REQUIRE(max_lag >= 1);
  const ArFit fit = fit_ar_yule_walker(series, max_lag);
  return fit.reflection;
}

}  // namespace fdqos::forecast
