#include "forecast/arima/difference.hpp"

#include "common/assert.hpp"

namespace fdqos::forecast {

std::vector<double> difference(std::span<const double> series, std::size_t d) {
  FDQOS_REQUIRE(series.size() >= d);
  std::vector<double> out(series.begin(), series.end());
  for (std::size_t round = 0; round < d; ++round) {
    for (std::size_t i = out.size(); i > 1; --i) {
      out[i - 1] -= out[i - 2];
    }
    out.erase(out.begin());
  }
  return out;
}

DifferenceState::DifferenceState(std::size_t d) : last_(d + 1, 0.0) {}

double DifferenceState::push(double z) {
  // Walk down the levels: new ∇^k value = new ∇^(k-1) value − previous
  // ∇^(k-1) value; update `last_` as we go.
  double value = z;
  for (std::size_t k = 0; k < last_.size(); ++k) {
    const double prev = last_[k];
    last_[k] = value;
    if (k + 1 == last_.size()) break;
    if (n_ <= k) {
      // Not enough history to form level k+1 yet.
      break;
    }
    value = value - prev;
  }
  ++n_;
  return ready() ? last_[order()] : 0.0;
}

double DifferenceState::integrate_forecast(double w_hat) const {
  FDQOS_REQUIRE(ready() || order() == 0);
  // ẑ = ŵ + Σ_{k=0}^{d-1} last value of ∇^k Z ... built by integrating one
  // level at a time: forecast at level k = forecast at level k+1 + last_[k].
  double value = w_hat;
  for (std::size_t k = order(); k > 0; --k) {
    value += last_[k - 1];
  }
  return value;
}

void DifferenceState::reset() {
  for (auto& v : last_) v = 0.0;
  n_ = 0;
}

}  // namespace fdqos::forecast
