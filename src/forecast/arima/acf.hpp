// Autocorrelation / partial autocorrelation for model identification.
//
// Thin façade over stats::acf plus the PACF (computed from the Levinson–
// Durbin recursion), used by order selection and by diagnostics in the
// experiment reports.
#pragma once

#include <span>
#include <vector>

namespace fdqos::forecast {

// Autocorrelations rho_0..rho_max_lag (rho_0 = 1).
std::vector<double> sample_acf(std::span<const double> series,
                               std::size_t max_lag);

// Partial autocorrelations pacf_1..pacf_max_lag.
std::vector<double> sample_pacf(std::span<const double> series,
                                std::size_t max_lag);

}  // namespace fdqos::forecast
