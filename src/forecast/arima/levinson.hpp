// Levinson–Durbin recursion: solves the Yule–Walker equations for AR(p)
// coefficients from the autocorrelation sequence in O(p²).
//
// Used directly for pure-AR fits and as step 1 (long-AR residual
// estimation) of the Hannan–Rissanen ARMA algorithm.
#pragma once

#include <span>
#include <vector>

namespace fdqos::forecast {

struct ArFit {
  std::vector<double> phi;      // AR coefficients phi_1..phi_p
  double noise_variance = 0.0;  // innovation variance estimate (relative to
                                // the series variance when rho is an ACF)
  std::vector<double> reflection;  // partial autocorrelations kappa_1..kappa_p
};

// `rho` must contain autocorrelations rho_0..rho_p with rho_0 = 1 (or
// autocovariances; the recursion is scale-invariant for phi).
// Returns an empty phi when p = 0.
ArFit levinson_durbin(std::span<const double> rho, std::size_t p);

// Convenience: fit AR(p) to a series via its sample ACF.
ArFit fit_ar_yule_walker(std::span<const double> series, std::size_t p);

}  // namespace fdqos::forecast
