#include "forecast/arima/linalg.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace fdqos::forecast {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  FDQOS_REQUIRE(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += a * rhs.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  FDQOS_REQUIRE(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += at(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

bool cholesky_solve(const Matrix& a, std::span<const double> b,
                    std::vector<double>& x) {
  FDQOS_REQUIRE(a.rows() == a.cols());
  FDQOS_REQUIRE(a.rows() == b.size());
  const std::size_t n = a.rows();

  // Lower-triangular factor L with A = L·Lᵀ.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return false;
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }

  // Forward substitution: L·z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * z[k];
    z[i] = sum / l.at(i, i);
  }

  // Back substitution: Lᵀ·x = z.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = z[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l.at(k, i) * x[k];
    x[i] = sum / l.at(i, i);
  }
  return true;
}

bool least_squares(const Matrix& x, std::span<const double> y,
                   std::vector<double>& beta) {
  FDQOS_REQUIRE(x.rows() == y.size());
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  if (n < k) return false;

  // Normal equations: (XᵀX + λI)·beta = Xᵀy.
  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = x.at(r, i);
      if (xi == 0.0) continue;
      xty[i] += xi * y[r];
      for (std::size_t j = i; j < k; ++j) xtx.at(i, j) += xi * x.at(r, j);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx.at(i, j) = xtx.at(j, i);
  }

  double trace = 0.0;
  for (std::size_t i = 0; i < k; ++i) trace += xtx.at(i, i);
  const double ridge = trace > 0.0 ? 1e-10 * trace / static_cast<double>(k) : 1e-10;
  for (std::size_t i = 0; i < k; ++i) xtx.at(i, i) += ridge;

  return cholesky_solve(xtx, xty, beta);
}

}  // namespace fdqos::forecast
