// Adaptive ARIMA predictor (paper §3.1 / §5.1).
//
// Wraps ArimaModel in the Predictor interface with the paper's adaptation
// scheme: coefficients are re-estimated every `refit_every` observations
// (N_Arima = 1000 in the paper) on a sliding history window, so the model
// tracks the changing WAN. Until the first successful fit — and whenever a
// candidate fit validates worse than the running mean — the predictor falls
// back to MEAN, which is also the paper's cold-start behaviour for
// windowed predictors.
#pragma once

#include <optional>
#include <vector>

#include "forecast/arima/arima_model.hpp"
#include "forecast/arima/hannan_rissanen.hpp"
#include "forecast/predictor.hpp"

namespace fdqos::forecast {

struct ArimaPredictorConfig {
  std::size_t refit_every = 1000;  // N_Arima
  std::size_t min_fit = 64;        // observations required before first fit
  std::size_t max_history = 8192;  // sliding fit window bound
  // Reject a candidate whose replayed one-step msqerr exceeds this multiple
  // of the MEAN predictor's msqerr on the same window (guards against
  // unstable/degenerate fits poisoning the timeout).
  double acceptance_factor = 2.0;
};

class ArimaPredictor final : public Predictor {
 public:
  explicit ArimaPredictor(ArimaOrder order, ArimaPredictorConfig config = {});

  void observe(double obs) override;
  double predict() const override;
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<Predictor> make_fresh() const override;

  bool has_model() const { return model_.has_value(); }
  std::size_t refit_count() const { return refits_; }
  std::size_t refit_rejections() const { return rejections_; }
  const ArimaOrder& order() const { return order_; }

 private:
  void maybe_refit();
  std::span<const double> fit_window() const;

  std::string name_;
  ArimaOrder order_;
  ArimaPredictorConfig config_;
  std::vector<double> history_;
  std::size_t n_ = 0;
  double mean_ = 0.0;  // running-mean fallback
  std::optional<ArimaModel> model_;
  std::size_t refits_ = 0;
  std::size_t rejections_ = 0;
};

// One-step msqerr of `model` when primed fresh and replayed over `series`;
// the first `warmup` points are not scored. Exposed for tests/validation.
double replay_msqerr(ArimaModel model, std::span<const double> series,
                     std::size_t warmup = 10);

}  // namespace fdqos::forecast
