#include "forecast/arima/arima_model.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::forecast {

std::string ArimaOrder::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ARIMA(%zu,%zu,%zu)", p, d, q);
  return buf;
}

ArimaModel::ArimaModel(ArimaOrder order, ArimaCoefficients coeffs)
    : order_(order),
      coeffs_(std::move(coeffs)),
      diff_(order.d),
      recent_w_(order.p > 0 ? order.p : 1, 0.0),
      recent_a_(order.q > 0 ? order.q : 1, 0.0) {
  FDQOS_REQUIRE(coeffs_.ar.size() == order_.p);
  FDQOS_REQUIRE(coeffs_.ma.size() == order_.q);
}

void ArimaModel::prime(std::span<const double> history) {
  diff_.reset();
  w_count_ = 0;
  a_count_ = 0;
  has_pending_forecast_ = false;
  pending_w_forecast_ = 0.0;
  last_z_ = 0.0;
  for (double z : history) observe(z);
}

double ArimaModel::forecast_differenced() const {
  double w_hat = coeffs_.intercept;
  // Lag i: the i-th most recent W value; missing lags (warmup) contribute 0,
  // which is the unconditional mean of a differenced series.
  for (std::size_t i = 1; i <= order_.p; ++i) {
    if (i > w_count_) break;
    const std::size_t idx = (w_count_ - i) % recent_w_.size();
    w_hat += coeffs_.ar[i - 1] * recent_w_[idx];
  }
  for (std::size_t j = 1; j <= order_.q; ++j) {
    if (j > a_count_) break;
    const std::size_t idx = (a_count_ - j) % recent_a_.size();
    w_hat += coeffs_.ma[j - 1] * recent_a_[idx];
  }
  return w_hat;
}

void ArimaModel::observe(double z) {
  last_z_ = z;
  const double w = diff_.push(z);
  if (!diff_.ready()) return;

  // Residual of the forecast issued for this W. For the very first
  // differenced point no forecast was outstanding; the unconditional
  // forecast (the intercept — empty AR/MA history) plays that role, as in
  // conditional maximum likelihood.
  const double a = has_pending_forecast_ ? w - pending_w_forecast_
                                         : w - coeffs_.intercept;

  if (order_.p > 0) {
    recent_w_[w_count_ % recent_w_.size()] = w;
  }
  ++w_count_;
  if (order_.q > 0) {
    recent_a_[a_count_ % recent_a_.size()] = a;
  }
  ++a_count_;

  pending_w_forecast_ = forecast_differenced();
  has_pending_forecast_ = true;
}

double ArimaModel::forecast() const {
  if (!diff_.ready() || !has_pending_forecast_) {
    // Not enough history to difference: fall back to persistence.
    return last_z_;
  }
  const double z_hat = diff_.integrate_forecast(pending_w_forecast_);
  if (!std::isfinite(z_hat)) return last_z_;
  return z_hat;
}

}  // namespace fdqos::forecast
