#include "forecast/arima/arima_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"
#include "stats/autocorrelation.hpp"

namespace fdqos::forecast {

double replay_msqerr(ArimaModel model, std::span<const double> series,
                     std::size_t warmup) {
  model.prime({});
  double ss = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i >= warmup) {
      const double err = series[i] - model.forecast();
      ss += err * err;
      ++scored;
    }
    model.observe(series[i]);
  }
  if (scored == 0) return std::numeric_limits<double>::infinity();
  const double msq = ss / static_cast<double>(scored);
  return std::isfinite(msq) ? msq : std::numeric_limits<double>::infinity();
}

ArimaPredictor::ArimaPredictor(ArimaOrder order, ArimaPredictorConfig config)
    : name_(order.to_string()), order_(order), config_(config) {
  FDQOS_REQUIRE(config_.refit_every > 0);
  FDQOS_REQUIRE(config_.min_fit > order.d + 2);
  history_.reserve(config_.max_history * 2);
}

std::span<const double> ArimaPredictor::fit_window() const {
  const std::size_t take = std::min(history_.size(), config_.max_history);
  return {history_.data() + (history_.size() - take), take};
}

void ArimaPredictor::observe(double obs) {
  ++n_;
  mean_ += (obs - mean_) / static_cast<double>(n_);
  history_.push_back(obs);
  // Keep the buffer bounded: drop the stale front half once it doubles.
  if (history_.size() > config_.max_history * 2) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(
                                          history_.size() - config_.max_history));
  }
  if (model_) model_->observe(obs);
  maybe_refit();
}

void ArimaPredictor::maybe_refit() {
  if (n_ < config_.min_fit) return;
  if (n_ % config_.refit_every != 0 && !(n_ == config_.min_fit && !model_)) {
    return;
  }
  const std::span<const double> window = fit_window();

  // Refits are the runtime's known CPU hog (N_Arima-periodic, O(window));
  // time every one so perf work has numbers to start from.
  obs::ObsSpan span("arima_refit",
                    obs::enabled()
                        ? &obs::instruments().arima_refit_duration_us
                        : nullptr);
  const ArmaFitResult fit = fit_arima(window, order_);
  ++refits_;
  if (!fit.ok) {
    ++rejections_;
    if (obs::enabled()) obs::instruments().arima_refits_rejected.inc();
    return;
  }
  ArimaModel candidate(order_, fit.coeffs);
  const double candidate_msq = replay_msqerr(candidate, window);

  // Benchmark: the MEAN predictor's error on this window is its variance
  // around the running mean — approximate with the window variance.
  const double naive_msq = std::max(stats::variance(window), 1e-12);
  if (candidate_msq > config_.acceptance_factor * naive_msq) {
    ++rejections_;
    if (obs::enabled()) obs::instruments().arima_refits_rejected.inc();
    FDQOS_LOG_DEBUG("%s refit rejected: msqerr %.4g vs naive %.4g",
                    name_.c_str(), candidate_msq, naive_msq);
    return;
  }

  candidate.prime(window);
  model_ = std::move(candidate);
  if (obs::enabled()) obs::instruments().arima_refits_accepted.inc();
  FDQOS_LOG_TRACE("%s refit accepted at n=%zu: msqerr %.4g (naive %.4g)",
                  name_.c_str(), n_, candidate_msq, naive_msq);
}

double ArimaPredictor::predict() const {
  if (model_) return model_->forecast();
  return n_ > 0 ? mean_ : 0.0;
}

std::unique_ptr<Predictor> ArimaPredictor::make_fresh() const {
  return std::make_unique<ArimaPredictor>(order_, config_);
}

}  // namespace fdqos::forecast
