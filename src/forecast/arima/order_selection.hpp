// ARIMA order selection by out-of-sample one-step accuracy.
//
// The paper searched (p,d,q) over [0,0,0]..[10,10,10] with the RPS toolkit
// and kept the order minimizing msqerr; ARIMA(2,1,1) won on their trace.
// This module reproduces that search: fit each candidate on a training
// prefix, replay it over the holdout suffix, rank by msqerr.
#pragma once

#include <span>
#include <vector>

#include "forecast/arima/arima_model.hpp"

namespace fdqos::forecast {

struct OrderCandidate {
  ArimaOrder order;
  double holdout_msqerr = 0.0;
  bool fitted = false;  // false when the fit failed (too short / singular)
  // Why the fit failed (static string, e.g. "singular least-squares
  // system"); nullptr when fitted.
  const char* fail_reason = nullptr;
};

struct OrderSelectionResult {
  ArimaOrder best;
  double best_msqerr = 0.0;
  std::vector<OrderCandidate> candidates;  // every order tried, in scan order
};

struct OrderSelectionConfig {
  ArimaOrder max_order{3, 2, 3};  // inclusive upper corner of the grid
  double train_fraction = 2.0 / 3.0;
  // Worker threads for the candidate grid: each (p,d,q) fits and scores
  // independently into its scan-order slot, and the argmin scan after the
  // join breaks msqerr ties toward the lowest (p,d,q) exactly like the
  // serial loop — `best` is jobs-independent. 0 = exec::default_jobs(),
  // 1 = serial.
  std::size_t jobs = 0;
};

OrderSelectionResult select_arima_order(std::span<const double> series,
                                        const OrderSelectionConfig& config = {});

}  // namespace fdqos::forecast
