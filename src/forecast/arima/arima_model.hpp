// ARIMA(p,d,q) model with incremental one-step-ahead forecasting.
//
// Convention (regression form — signs folded into the coefficients):
//   W_t = c + Σ_{i=1..p} ar_i·W_{t−i} + Σ_{j=1..q} ma_j·â_{t−j} + a_t
// where W = ∇^d Z is the d-times differenced series and â are the one-step
// prediction residuals (innovation estimates). In Box–Jenkins notation
// ar_i = φ_i, ma_j = −θ_j, c = θ_0.
//
// The model carries its own state (recent W values, recent residuals,
// differencing chain) so that after priming on a history window it forecasts
// each next observation in O(p+q).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "forecast/arima/difference.hpp"

namespace fdqos::forecast {

struct ArimaOrder {
  std::size_t p = 0;
  std::size_t d = 0;
  std::size_t q = 0;

  bool operator==(const ArimaOrder&) const = default;
  std::string to_string() const;  // "ARIMA(p,d,q)"
};

struct ArimaCoefficients {
  std::vector<double> ar;   // ar_1..ar_p
  std::vector<double> ma;   // ma_1..ma_q
  double intercept = 0.0;   // c
};

class ArimaModel {
 public:
  ArimaModel(ArimaOrder order, ArimaCoefficients coeffs);

  const ArimaOrder& order() const { return order_; }
  const ArimaCoefficients& coefficients() const { return coeffs_; }

  // Clear state and replay `history` (oldest first) so that subsequent
  // forecasts continue from its end.
  void prime(std::span<const double> history);

  // Feed the next raw observation; updates residual state and the cached
  // one-step forecast.
  void observe(double z);

  // One-step-ahead forecast of the next raw observation. Before enough
  // observations exist to difference d times, returns the last observation
  // (a LAST fallback — only relevant during the first d+1 points).
  double forecast() const;

  std::size_t observation_count() const { return diff_.count(); }

 private:
  double forecast_differenced() const;

  ArimaOrder order_;
  ArimaCoefficients coeffs_;
  DifferenceState diff_;
  std::vector<double> recent_w_;  // ring, newest at (w_count_-1) % p
  std::vector<double> recent_a_;  // ring, newest at (a_count_-1) % q
  std::size_t w_count_ = 0;
  std::size_t a_count_ = 0;
  double pending_w_forecast_ = 0.0;  // ŵ for the not-yet-seen next W
  bool has_pending_forecast_ = false;
  double last_z_ = 0.0;
};

}  // namespace fdqos::forecast
