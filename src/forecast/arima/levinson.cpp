#include "forecast/arima/levinson.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "forecast/arima/acf.hpp"

namespace fdqos::forecast {

ArFit levinson_durbin(std::span<const double> rho, std::size_t p) {
  FDQOS_REQUIRE(rho.size() >= p + 1);
  ArFit fit;
  fit.phi.assign(p, 0.0);
  fit.reflection.assign(p, 0.0);
  fit.noise_variance = rho[0];
  if (p == 0) return fit;

  std::vector<double> phi(p, 0.0);
  std::vector<double> prev(p, 0.0);
  double err = rho[0];

  for (std::size_t k = 1; k <= p; ++k) {
    double acc = rho[k];
    for (std::size_t j = 1; j < k; ++j) acc -= prev[j - 1] * rho[k - j];
    // Degenerate (perfectly predictable or constant) series: stop early.
    if (err <= 0.0 || !std::isfinite(err)) {
      for (std::size_t j = k; j <= p; ++j) fit.reflection[j - 1] = 0.0;
      break;
    }
    const double kappa = acc / err;
    fit.reflection[k - 1] = kappa;

    phi[k - 1] = kappa;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - kappa * prev[k - j - 1];
    }
    err *= (1.0 - kappa * kappa);
    prev = phi;
  }

  fit.phi = phi;
  fit.noise_variance = err;
  return fit;
}

ArFit fit_ar_yule_walker(std::span<const double> series, std::size_t p) {
  FDQOS_REQUIRE(series.size() > p);
  const std::vector<double> rho = sample_acf(series, p);
  return levinson_durbin(rho, p);
}

}  // namespace fdqos::forecast
