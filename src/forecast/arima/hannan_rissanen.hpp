// Hannan–Rissanen two-stage ARMA estimation.
//
// Stage 1 fits a long autoregression (Levinson–Durbin on the sample ACF)
// whose residuals estimate the unobservable innovations. Stage 2 regresses
// the series on its own lags and the lagged residual estimates — ordinary
// least squares, giving the ARMA coefficients in regression form (see
// arima_model.hpp for the sign convention).
#pragma once

#include <span>

#include "forecast/arima/arima_model.hpp"

namespace fdqos::forecast {

struct ArmaFitResult {
  bool ok = false;
  // Static string naming why the fit failed; nullptr when ok. Stored as a
  // literal so results stay cheap to copy across threads.
  const char* error = nullptr;
  ArimaCoefficients coeffs;
  double residual_variance = 0.0;  // stage-2 in-sample residual variance
  std::size_t rows = 0;            // regression rows used
};

// Fits ARMA(p, q) to `w` (already differenced / stationary).
// Fails (ok = false) when the series is too short for the requested order.
ArmaFitResult fit_arma_hannan_rissanen(std::span<const double> w,
                                       std::size_t p, std::size_t q);

// Differences `z` d times, then fits ARMA(p, q) to the result.
ArmaFitResult fit_arima(std::span<const double> z, const ArimaOrder& order);

}  // namespace fdqos::forecast
