// Predictors beyond the paper's five — the "further experiments" direction
// of its §6. All remain O(1)–O(log N) per update so the §5.3 overhead
// comparison stays meaningful.
//
//   HOLT(α, β)   — double exponential smoothing (level + trend): tracks a
//                  drifting delay level with an explicit slope term, where
//                  LPF systematically lags any ramp.
//   WINMEDIAN(N) — median of the last N observations: immune to the rare
//                  heavy spikes that inflate mean-based forecasts.
#pragma once

#include <vector>

#include "forecast/predictor.hpp"

namespace fdqos::forecast {

// Holt's linear method:
//   level_k = α·obs + (1-α)·(level_{k-1} + trend_{k-1})
//   trend_k = β·(level_k − level_{k-1}) + (1-β)·trend_{k-1}
//   pred    = level_k + trend_k
class HoltPredictor final : public Predictor {
 public:
  HoltPredictor(double alpha, double beta);

  void observe(double obs) override;
  double predict() const override;
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<Predictor> make_fresh() const override;

  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  std::string name_;
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t n_ = 0;
};

// Median of the last N observations (equals the median of all observations
// while n < N). O(N) per update via an ordered insert into a small window —
// N is ~10 in practice, so this is still "constant" in the paper's sense.
class WinMedianPredictor final : public Predictor {
 public:
  explicit WinMedianPredictor(std::size_t window);

  void observe(double obs) override;
  double predict() const override;
  std::size_t observation_count() const override { return n_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<Predictor> make_fresh() const override;

  std::size_t window() const { return capacity_; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::vector<double> ring_;    // arrival order, for eviction
  std::vector<double> sorted_;  // same values, kept ordered
  std::size_t n_ = 0;
};

}  // namespace fdqos::forecast
