#include "forecast/shared_predictor.hpp"

#include "common/assert.hpp"

namespace fdqos::forecast {

SharedPredictor::SharedPredictor(std::unique_ptr<Predictor> predictor)
    : predictor_(std::move(predictor)) {
  FDQOS_REQUIRE(predictor_ != nullptr);
}

void SharedPredictor::observe(double obs) {
  predictor_->observe(obs);
  ++observe_calls_;
  cache_valid_ = false;
}

double SharedPredictor::predict() const {
  if (!cache_valid_) {
    cached_forecast_ = predictor_->predict();
    ++predict_evals_;
    cache_valid_ = true;
  }
  return cached_forecast_;
}

std::unique_ptr<Predictor> SharedPredictor::make_fresh() const {
  return std::make_unique<SharedPredictor>(predictor_->make_fresh());
}

}  // namespace fdqos::forecast
