// SharedPredictor — one predictor state, evaluated once, consumed by many.
//
// The paper's fair-comparison suite pairs each predictor with several
// safety margins; every (predictor, margin) detector sees the identical
// arrival stream, so all detectors sharing a predictor type+parameters
// carry byte-identical predictor state. SharedPredictor makes that sharing
// explicit: it owns one underlying Predictor, forwards observe() exactly
// once per heartbeat, and memoizes predict() until the next observation —
// so a DetectorBank group of N margin lanes pays one state update and one
// real forecast evaluation per heartbeat regardless of N. Counters expose
// the deduplication win (see docs/detector_bank.md).
//
// SharedPredictor is itself a Predictor, so it drops into every existing
// seam (accuracy scoring, FdSpec factories) unchanged. Memoization is safe
// because predict() is a pure function of the observation history.
#pragma once

#include <cstdint>
#include <memory>

#include "forecast/predictor.hpp"

namespace fdqos::forecast {

class SharedPredictor final : public Predictor {
 public:
  explicit SharedPredictor(std::unique_ptr<Predictor> predictor);

  void observe(double obs) override;
  double predict() const override;
  std::size_t observation_count() const override {
    return predictor_->observation_count();
  }
  const std::string& name() const override { return predictor_->name(); }
  std::unique_ptr<Predictor> make_fresh() const override;

  const Predictor& underlying() const { return *predictor_; }

  // State updates forwarded to the underlying predictor.
  std::uint64_t observe_calls() const { return observe_calls_; }
  // Underlying predict() evaluations (cache misses), not caller queries.
  std::uint64_t predict_evals() const { return predict_evals_; }

 private:
  std::unique_ptr<Predictor> predictor_;
  std::uint64_t observe_calls_ = 0;
  mutable std::uint64_t predict_evals_ = 0;
  mutable bool cache_valid_ = false;
  mutable double cached_forecast_ = 0.0;
};

}  // namespace fdqos::forecast
