#include "forecast/predictor.hpp"

// Interface anchor: keeps the vtable in one translation unit.
