#include "forecast/extended_predictors.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::forecast {

HoltPredictor::HoltPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  FDQOS_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  FDQOS_REQUIRE(beta >= 0.0 && beta <= 1.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "HOLT(%g,%g)", alpha_, beta_);
  name_ = buf;
}

void HoltPredictor::observe(double obs) {
  if (n_ == 0) {
    level_ = obs;
    trend_ = 0.0;
  } else if (n_ == 1) {
    trend_ = obs - level_;
    level_ = obs;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * obs + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++n_;
}

double HoltPredictor::predict() const {
  if (n_ == 0) return 0.0;
  return level_ + trend_;
}

std::unique_ptr<Predictor> HoltPredictor::make_fresh() const {
  return std::make_unique<HoltPredictor>(alpha_, beta_);
}

WinMedianPredictor::WinMedianPredictor(std::size_t window)
    : capacity_(window) {
  FDQOS_REQUIRE(window > 0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "WINMEDIAN(%zu)", window);
  name_ = buf;
  ring_.reserve(window);
  sorted_.reserve(window);
}

void WinMedianPredictor::observe(double obs) {
  if (ring_.size() == capacity_) {
    // Evict the oldest value from both structures.
    const double oldest = ring_[n_ % capacity_];
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), oldest);
    FDQOS_ASSERT(it != sorted_.end());
    sorted_.erase(it);
    ring_[n_ % capacity_] = obs;
  } else {
    ring_.push_back(obs);
  }
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), obs), obs);
  ++n_;
}

double WinMedianPredictor::predict() const {
  if (sorted_.empty()) return 0.0;
  const std::size_t m = sorted_.size();
  if (m % 2 == 1) return sorted_[m / 2];
  return 0.5 * (sorted_[m / 2 - 1] + sorted_[m / 2]);
}

std::unique_ptr<Predictor> WinMedianPredictor::make_fresh() const {
  return std::make_unique<WinMedianPredictor>(capacity_);
}

}  // namespace fdqos::forecast
