#include "forecast/msqerr.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace fdqos::forecast {

AccuracyResult evaluate_accuracy(Predictor& predictor,
                                 std::span<const double> series,
                                 std::size_t warmup) {
  FDQOS_REQUIRE(predictor.observation_count() == 0);
  AccuracyResult result;
  double sq_sum = 0.0;
  double abs_sum = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i >= warmup) {
      const double err = series[i] - predictor.predict();
      sq_sum += err * err;
      abs_sum += std::fabs(err);
      ++result.evaluated;
    }
    predictor.observe(series[i]);
  }
  if (result.evaluated > 0) {
    result.msqerr = sq_sum / static_cast<double>(result.evaluated);
    result.mean_abs_err = abs_sum / static_cast<double>(result.evaluated);
  }
  return result;
}

}  // namespace fdqos::forecast
