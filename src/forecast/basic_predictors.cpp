#include "forecast/basic_predictors.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::forecast {

void LastPredictor::observe(double obs) {
  last_ = obs;
  ++n_;
}

const std::string& LastPredictor::name() const {
  static const std::string kName = "LAST";
  return kName;
}

std::unique_ptr<Predictor> LastPredictor::make_fresh() const {
  return std::make_unique<LastPredictor>();
}

void MeanPredictor::observe(double obs) {
  ++n_;
  mean_ += (obs - mean_) / static_cast<double>(n_);
}

const std::string& MeanPredictor::name() const {
  static const std::string kName = "MEAN";
  return kName;
}

std::unique_ptr<Predictor> MeanPredictor::make_fresh() const {
  return std::make_unique<MeanPredictor>();
}

WinMeanPredictor::WinMeanPredictor(std::size_t window) : ring_(window, 0.0) {
  FDQOS_REQUIRE(window > 0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "WINMEAN(%zu)", window);
  name_ = buf;
}

void WinMeanPredictor::observe(double obs) {
  const std::size_t slot = n_ % ring_.size();
  if (n_ >= ring_.size()) window_sum_ -= ring_[slot];
  ring_[slot] = obs;
  window_sum_ += obs;
  ++n_;
}

double WinMeanPredictor::predict() const {
  if (n_ == 0) return 0.0;
  const std::size_t filled = n_ < ring_.size() ? n_ : ring_.size();
  return window_sum_ / static_cast<double>(filled);
}

std::unique_ptr<Predictor> WinMeanPredictor::make_fresh() const {
  return std::make_unique<WinMeanPredictor>(ring_.size());
}

LpfPredictor::LpfPredictor(double beta) : beta_(beta) {
  FDQOS_REQUIRE(beta > 0.0 && beta <= 1.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "LPF(%g)", beta);
  name_ = buf;
}

void LpfPredictor::observe(double obs) {
  if (n_ == 0) {
    pred_ = obs;
  } else {
    // (1-β)·pred + β·obs — the paper's form; exactly LAST when β = 1.
    pred_ = (1.0 - beta_) * pred_ + beta_ * obs;
  }
  ++n_;
}

std::unique_ptr<Predictor> LpfPredictor::make_fresh() const {
  return std::make_unique<LpfPredictor>(beta_);
}

}  // namespace fdqos::forecast
