#include "clockx/ntp_estimator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fdqos::clockx {

NtpSample compute_ntp_sample(const NtpExchange& e) {
  NtpSample s;
  const Duration forward = e.t2 - e.t1;   // includes +offset
  const Duration backward = e.t3 - e.t4;  // includes +offset − return delay
  s.offset = (forward + backward) / 2;
  s.rtt = (e.t4 - e.t1) - (e.t3 - e.t2);
  return s;
}

NtpEstimator::NtpEstimator(std::size_t window) : window_(window) {
  FDQOS_REQUIRE(window > 0);
}

void NtpEstimator::add_exchange(const NtpExchange& exchange) {
  add_sample(compute_ntp_sample(exchange));
}

void NtpEstimator::add_sample(const NtpSample& sample) {
  samples_.push_back(sample);
  if (samples_.size() > window_) samples_.pop_front();
}

std::optional<Duration> NtpEstimator::offset() const {
  if (samples_.empty()) return std::nullopt;
  const NtpSample* best = &samples_.front();
  for (const auto& s : samples_) {
    if (s.rtt < best->rtt) best = &s;
  }
  return best->offset;
}

std::optional<Duration> NtpEstimator::best_rtt() const {
  if (samples_.empty()) return std::nullopt;
  Duration best = samples_.front().rtt;
  for (const auto& s : samples_) best = std::min(best, s.rtt);
  return best;
}

}  // namespace fdqos::clockx
