// NTP-style clock-offset estimation.
//
// The classical four-timestamp exchange: client sends at t1 (client clock),
// server receives at t2 and replies at t3 (server clock), client receives
// at t4 (client clock). Then
//
//   offset = ((t2 − t1) + (t3 − t4)) / 2,   rtt = (t4 − t1) − (t3 − t2)
//
// The estimator keeps a sliding window of samples and reports the offset of
// the minimum-RTT sample (NTP's huff-'n-puff idea: the least-queued exchange
// has the least asymmetric-delay contamination). This is the mechanism that
// backs the paper's synchronized-clocks assumption; tests quantify the
// residual error it leaves under the Italy–Japan delay model.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "common/time.hpp"

namespace fdqos::clockx {

struct NtpExchange {
  TimePoint t1;  // client send   (client clock)
  TimePoint t2;  // server recv   (server clock)
  TimePoint t3;  // server send   (server clock)
  TimePoint t4;  // client recv   (client clock)
};

struct NtpSample {
  Duration offset;  // estimated server_clock − client_clock
  Duration rtt;     // round-trip time net of server processing
};

// Pure computation on one exchange.
NtpSample compute_ntp_sample(const NtpExchange& exchange);

class NtpEstimator {
 public:
  explicit NtpEstimator(std::size_t window = 8);

  void add_exchange(const NtpExchange& exchange);
  void add_sample(const NtpSample& sample);

  std::size_t sample_count() const { return samples_.size(); }

  // Offset of the minimum-RTT sample in the window; nullopt before any
  // sample arrives.
  std::optional<Duration> offset() const;
  // RTT of that best sample.
  std::optional<Duration> best_rtt() const;

 private:
  std::size_t window_;
  std::deque<NtpSample> samples_;
};

}  // namespace fdqos::clockx
