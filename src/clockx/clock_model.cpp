#include "clockx/clock_model.hpp"

#include <algorithm>
#include <cmath>

namespace fdqos::clockx {

void StepClock::add_step(TimePoint at, Duration offset) {
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), at,
      [](TimePoint t, const auto& step) { return t < step.first; });
  steps_.insert(it, {at, offset});
}

Duration StepClock::error_at(TimePoint global) const {
  // Schedules hold a handful of jumps; a linear sum over the time-sorted
  // raw offsets beats maintaining cumulative state on insert.
  Duration error = Duration::zero();
  for (const auto& [at, offset] : steps_) {
    if (at > global) break;
    error += offset;
  }
  return error;
}

ClockModel::ClockModel(Duration offset, double drift_ppm, TimePoint epoch)
    : offset_(offset), drift_ppm_(drift_ppm), epoch_(epoch) {}

TimePoint ClockModel::to_local(TimePoint global) const {
  const double drift_ns =
      drift_ppm_ * 1e-6 * static_cast<double>((global - epoch_).count_nanos());
  return global + offset_ +
         Duration::nanos(static_cast<std::int64_t>(std::llround(drift_ns)));
}

TimePoint ClockModel::to_global(TimePoint local) const {
  // Invert local = global + offset + k·(global − epoch), k = drift·1e-6:
  // global = epoch + (local − offset − epoch) / (1 + k).
  const double k = drift_ppm_ * 1e-6;
  const double rel =
      static_cast<double>((local - offset_ - epoch_).count_nanos());
  return epoch_ +
         Duration::nanos(static_cast<std::int64_t>(std::llround(rel / (1.0 + k))));
}

Duration ClockModel::error_at(TimePoint global) const {
  return to_local(global) - global;
}

Duration DisciplinedClock::residual_at(TimePoint global) const {
  const TimePoint local = raw_.to_local(global);
  return global_estimate(local) - global;
}

}  // namespace fdqos::clockx
