// Local-clock models: offset + drift.
//
// The paper assumes offset_pq = 0 and drift rho_pq = 0, justified by NTP
// synchronization against two stratum servers. This module provides (a) the
// drifting-clock model needed to *test* that assumption's impact, and (b)
// the timeline conversions used by the NTP-style estimator that discharges
// it. A ClockModel maps the global (true) timeline to a node's local one:
//
//   local(t) = t + offset + drift_ppm·1e-6·(t − epoch)
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace fdqos::clockx {

class ClockModel {
 public:
  ClockModel() = default;  // perfect clock
  ClockModel(Duration offset, double drift_ppm,
             TimePoint epoch = TimePoint::origin());

  TimePoint to_local(TimePoint global) const;
  TimePoint to_global(TimePoint local) const;

  Duration offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

  // Instantaneous error local(t) − t.
  Duration error_at(TimePoint global) const;

 private:
  Duration offset_ = Duration::zero();
  double drift_ppm_ = 0.0;
  TimePoint epoch_ = TimePoint::origin();
};

// A clock whose error is a piecewise-constant step function: NTP slams, VM
// migrations, and leap-second smears show up as discrete jumps, not smooth
// drift. Each step at time t adds `offset` to the clock error from t on;
// error_at sums every step at or before the queried instant. Used by the
// faultx chaos layer to inject clock jumps into the monitored node.
class StepClock {
 public:
  // Register a jump of `offset` taking effect at `at` (global timeline).
  // Steps may be added in any order; queries see them sorted by time.
  void add_step(TimePoint at, Duration offset);

  // Accumulated clock error local(t) − t at global time t.
  Duration error_at(TimePoint global) const;

  TimePoint to_local(TimePoint global) const {
    return global + error_at(global);
  }

  std::size_t step_count() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

 private:
  // (time, raw offset of this step), kept sorted by time.
  std::vector<std::pair<TimePoint, Duration>> steps_;
};

// A clock disciplined by an externally supplied correction (the output of
// the NTP estimator): reads the raw local clock and subtracts the estimated
// offset, approximating the global timeline.
class DisciplinedClock {
 public:
  explicit DisciplinedClock(const ClockModel& raw) : raw_(raw) {}

  void apply_correction(Duration estimated_offset) {
    correction_ = estimated_offset;
  }
  Duration correction() const { return correction_; }

  // Estimate of global time from a local reading.
  TimePoint global_estimate(TimePoint local) const {
    return local - correction_;
  }
  // Residual synchronization error at global time t.
  Duration residual_at(TimePoint global) const;

 private:
  const ClockModel& raw_;
  Duration correction_ = Duration::zero();
};

}  // namespace fdqos::clockx
