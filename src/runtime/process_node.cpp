#include "runtime/process_node.hpp"

namespace fdqos::runtime {

TransportLayer::TransportLayer(net::Transport& transport, net::NodeId node)
    : transport_(transport) {
  transport_.bind(node, [this](const net::Message& msg) { deliver_up(msg); });
}

void TransportLayer::handle_down(net::Message msg) {
  transport_.send(std::move(msg));
}

ProcessNode::ProcessNode(net::Transport& transport, net::NodeId id)
    : id_(id), transport_layer_(transport, id), top_(&transport_layer_) {
  start_order_.push_back(&transport_layer_);
}

void ProcessNode::start() {
  for (Layer* layer : start_order_) layer->start();
}

}  // namespace fdqos::runtime
