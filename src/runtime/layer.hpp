// Layered protocol stacks (the Neko architecture, DESIGN.md §2).
//
// A ProcessNode is a vertical stack of Layers over a Transport. Messages
// travel up (network → application) via handle_up and down via handle_down;
// a layer may consume, transform, drop, or forward. Layers are written once
// and run unchanged over the simulated or the real transport — the property
// the paper's experimental architecture (Figure 3) relies on to compare 30
// failure detectors under identical conditions.
//
// Threading: the whole stack is single-threaded under its driver (virtual-
// time simulator or RealTimeDriver), as in Neko's per-process event loop.
#pragma once

#include <vector>

#include "net/message.hpp"

namespace fdqos::runtime {

class Layer {
 public:
  virtual ~Layer() = default;

  // Called once when the node starts, bottom-up. Layers arm timers here.
  virtual void start() {}

  // A message arriving from the layer below. Default: forward to every
  // layer stacked above.
  virtual void handle_up(const net::Message& msg) { deliver_up(msg); }

  // A message being sent by the layer above. Default: forward below.
  virtual void handle_down(net::Message msg) { send_down(std::move(msg)); }

  // Stack `upper` on top of `lower` (a lower layer may carry several upper
  // layers; each upper has exactly one lower).
  static void stack(Layer& lower, Layer& upper);

  const std::vector<Layer*>& layers_above() const { return above_; }
  Layer* layer_below() const { return below_; }

 protected:
  void deliver_up(const net::Message& msg) {
    for (Layer* layer : above_) layer->handle_up(msg);
  }
  void send_down(net::Message msg);

 private:
  Layer* below_ = nullptr;
  std::vector<Layer*> above_;
};

}  // namespace fdqos::runtime
