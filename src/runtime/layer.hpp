// Layered protocol stacks (the Neko architecture, DESIGN.md §2).
//
// A ProcessNode is a vertical stack of Layers over a Transport. Messages
// travel up (network → application) via handle_up and down via handle_down;
// a layer may consume, transform, drop, or forward. Layers are written once
// and run unchanged over the simulated or the real transport — the property
// the paper's experimental architecture (Figure 3) relies on to compare 30
// failure detectors under identical conditions.
//
// Threading: the whole stack is single-threaded under its driver (virtual-
// time simulator or RealTimeDriver), as in Neko's per-process event loop.
#pragma once

#include <exception>
#include <vector>

#include "common/log.hpp"
#include "net/message.hpp"

namespace fdqos::runtime {

// Invoke `fn` with exception containment: one faulty consumer must not
// starve its siblings. Used by every fan-out point in the stack — the
// MultiPlexer's dispatch to stacked detectors and the DetectorBank's
// per-lane margin/observer dispatch. Returns false (after logging a
// warning prefixed with `who`) when fn threw; the caller counts it.
template <typename Fn>
bool invoke_isolated(const char* who, Fn&& fn) {
  try {
    fn();
    return true;
  } catch (const std::exception& e) {
    FDQOS_LOG_WARN("%s: dispatch threw: %s", who, e.what());
    return false;
  } catch (...) {
    FDQOS_LOG_WARN("%s: dispatch threw a non-exception", who);
    return false;
  }
}

class Layer {
 public:
  virtual ~Layer() = default;

  // Called once when the node starts, bottom-up. Layers arm timers here.
  virtual void start() {}

  // A message arriving from the layer below. Default: forward to every
  // layer stacked above.
  virtual void handle_up(const net::Message& msg) { deliver_up(msg); }

  // A message being sent by the layer above. Default: forward below.
  virtual void handle_down(net::Message msg) { send_down(std::move(msg)); }

  // Stack `upper` on top of `lower` (a lower layer may carry several upper
  // layers; each upper has exactly one lower).
  static void stack(Layer& lower, Layer& upper);

  const std::vector<Layer*>& layers_above() const { return above_; }
  Layer* layer_below() const { return below_; }

 protected:
  void deliver_up(const net::Message& msg) {
    for (Layer* layer : above_) layer->handle_up(msg);
  }
  void send_down(net::Message msg);

 private:
  Layer* below_ = nullptr;
  std::vector<Layer*> above_;
};

}  // namespace fdqos::runtime
