// HeartbeaterLayer — the monitored process q (paper §2.3).
//
// q is cyclic: every η time units it sends heartbeat m_i with sequence
// number i, at σ_i = i·η on the global timeline. Sends are scheduled at
// absolute multiples of η (no accumulation drift), matching the paper's
// constant sending interval.
#pragma once

#include <cstdint>

#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::runtime {

class HeartbeaterLayer final : public Layer {
 public:
  struct Config {
    Duration eta = Duration::seconds(1);  // sending period η
    net::NodeId self = 0;
    net::NodeId monitor = 1;
    // σ_i = epoch + i·η; the paper uses epoch = 0 on the global timeline.
    TimePoint epoch = TimePoint::origin();
    std::int64_t max_cycles = 0;  // 0 = unbounded
  };

  HeartbeaterLayer(sim::Simulator& simulator, Config config);

  void start() override;

  std::int64_t cycles_sent() const { return next_seq_ - 1; }
  const Config& config() const { return config_; }

 private:
  void send_heartbeat();
  void schedule_next();

  sim::Simulator& simulator_;
  Config config_;
  std::int64_t next_seq_ = 1;
};

}  // namespace fdqos::runtime
