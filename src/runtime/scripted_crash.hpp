// ScriptedCrashLayer — deterministic fault injection.
//
// Same drop-everything-while-down semantics as SimCrashLayer, but crash and
// restore instants come from an explicit script instead of the MTTC/TTR
// process. Used by consensus experiments ("crash the round-2 coordinator at
// t = 12 s") and by any test that needs a reproducible fault pattern.
#pragma once

#include <functional>
#include <vector>

#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::runtime {

class ScriptedCrashLayer final : public Layer {
 public:
  struct DownPeriod {
    TimePoint crash;
    TimePoint restore;  // TimePoint::max() = never restored
  };

  // Periods must be disjoint and sorted by crash time.
  ScriptedCrashLayer(sim::Simulator& simulator,
                     std::vector<DownPeriod> schedule);

  using Observer = std::function<void(TimePoint, bool)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  void start() override;
  void handle_up(const net::Message& msg) override;
  void handle_down(net::Message msg) override;

  bool crashed() const { return crashed_; }
  std::uint64_t dropped_messages() const { return dropped_; }

 private:
  sim::Simulator& simulator_;
  std::vector<DownPeriod> schedule_;
  Observer observer_;
  bool crashed_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace fdqos::runtime
