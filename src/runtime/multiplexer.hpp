// MultiPlexerLayer — fair fan-out (paper §4).
//
// Forwards every message arriving from the network to *all* layers stacked
// above it, immediately and in stacking order. All 30 failure detectors sit
// on one MultiPlexer so they perceive the identical message arrival
// process — the basis of the paper's fair QoS comparison.
#pragma once

#include <cstdint>

#include "runtime/layer.hpp"

namespace fdqos::runtime {

class MultiPlexerLayer final : public Layer {
 public:
  void handle_up(const net::Message& msg) override;

  std::uint64_t messages_seen() const { return seen_; }
  std::size_t fan_out() const { return layers_above().size(); }
  // Exceptions swallowed during fan-out (see handle_up): one faulty
  // detector must not starve its siblings of the shared arrival stream.
  std::uint64_t dispatch_errors() const { return dispatch_errors_; }

 private:
  void fan_out_isolated(const net::Message& msg);

  std::uint64_t seen_ = 0;
  std::uint64_t dispatch_errors_ = 0;
};

}  // namespace fdqos::runtime
