#include "runtime/multiplexer.hpp"

#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace fdqos::runtime {

void MultiPlexerLayer::handle_up(const net::Message& msg) {
  ++seen_;
  if (!obs::enabled()) {
    deliver_up(msg);
    return;
  }
  auto& m = obs::instruments();
  m.mux_dispatch_total.inc();
  if (msg.type == net::MessageType::kHeartbeat) m.heartbeats_delivered.inc();
  obs::ObsSpan span("mux_dispatch", &m.mux_dispatch_duration_us);
  deliver_up(msg);
}

}  // namespace fdqos::runtime
