#include "runtime/multiplexer.hpp"

#include <exception>

#include "common/log.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace fdqos::runtime {

void MultiPlexerLayer::fan_out_isolated(const net::Message& msg) {
  // The fairness contract is that every upper layer perceives the full
  // arrival stream. A detector callback that throws therefore may not
  // abort the fan-out: the error is contained to the offending layer,
  // counted, logged, and the remaining layers still receive the message.
  for (Layer* layer : layers_above()) {
    if (!invoke_isolated("mux", [&] { layer->handle_up(msg); })) {
      ++dispatch_errors_;
    }
  }
}

void MultiPlexerLayer::handle_up(const net::Message& msg) {
  ++seen_;
  if (!obs::enabled()) {
    fan_out_isolated(msg);
    return;
  }
  auto& m = obs::instruments();
  m.mux_dispatch_total.inc();
  if (msg.type == net::MessageType::kHeartbeat) m.heartbeats_delivered.inc();
  obs::ObsSpan span("mux_dispatch", &m.mux_dispatch_duration_us);
  fan_out_isolated(msg);
}

}  // namespace fdqos::runtime
