#include "runtime/multiplexer.hpp"

namespace fdqos::runtime {

void MultiPlexerLayer::handle_up(const net::Message& msg) {
  ++seen_;
  deliver_up(msg);
}

}  // namespace fdqos::runtime
