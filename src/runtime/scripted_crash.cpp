#include "runtime/scripted_crash.hpp"

#include "common/assert.hpp"

namespace fdqos::runtime {

ScriptedCrashLayer::ScriptedCrashLayer(sim::Simulator& simulator,
                                       std::vector<DownPeriod> schedule)
    : simulator_(simulator), schedule_(std::move(schedule)) {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    FDQOS_REQUIRE(schedule_[i].restore > schedule_[i].crash);
    if (i > 0) FDQOS_REQUIRE(schedule_[i].crash > schedule_[i - 1].restore);
  }
}

void ScriptedCrashLayer::start() {
  for (const auto& period : schedule_) {
    simulator_.schedule_at(period.crash, [this] {
      FDQOS_ASSERT(!crashed_);
      crashed_ = true;
      if (observer_) observer_(simulator_.now(), true);
    });
    if (period.restore < TimePoint::max()) {
      simulator_.schedule_at(period.restore, [this] {
        FDQOS_ASSERT(crashed_);
        crashed_ = false;
        if (observer_) observer_(simulator_.now(), false);
      });
    }
  }
}

void ScriptedCrashLayer::handle_up(const net::Message& msg) {
  if (crashed_) {
    ++dropped_;
    return;
  }
  deliver_up(msg);
}

void ScriptedCrashLayer::handle_down(net::Message msg) {
  if (crashed_) {
    ++dropped_;
    return;
  }
  send_down(std::move(msg));
}

}  // namespace fdqos::runtime
