#include "runtime/heartbeater.hpp"

#include "common/assert.hpp"
#include "obs/instruments.hpp"

namespace fdqos::runtime {

HeartbeaterLayer::HeartbeaterLayer(sim::Simulator& simulator, Config config)
    : simulator_(simulator), config_(config) {
  FDQOS_REQUIRE(config_.eta > Duration::zero());
}

void HeartbeaterLayer::start() { schedule_next(); }

void HeartbeaterLayer::schedule_next() {
  if (config_.max_cycles > 0 && next_seq_ > config_.max_cycles) return;
  const TimePoint when = config_.epoch + config_.eta * next_seq_;
  FDQOS_ASSERT(when >= simulator_.now());
  simulator_.schedule_at(when, [this] { send_heartbeat(); });
}

void HeartbeaterLayer::send_heartbeat() {
  net::Message msg;
  msg.from = config_.self;
  msg.to = config_.monitor;
  msg.type = net::MessageType::kHeartbeat;
  msg.seq = next_seq_;
  msg.send_time = simulator_.now();
  ++next_seq_;
  if (obs::enabled()) obs::instruments().heartbeats_sent.inc();
  send_down(std::move(msg));
  schedule_next();
}

}  // namespace fdqos::runtime
