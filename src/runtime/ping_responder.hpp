// PingResponderLayer — the monitored side of a pull-style failure detector
// (paper §2.2): answers every kPing with a kPong carrying the same sequence
// number. Stacked above SimCrashLayer, it goes silent while "crashed",
// exactly like the Heartbeater.
#pragma once

#include <cstdint>

#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::runtime {

class PingResponderLayer final : public Layer {
 public:
  // `processing` models the server-side turnaround before the pong leaves.
  PingResponderLayer(sim::Simulator& simulator, net::NodeId self,
                     Duration processing = Duration::zero());

  void handle_up(const net::Message& msg) override;

  std::uint64_t pings_answered() const { return answered_; }

 private:
  sim::Simulator& simulator_;
  net::NodeId self_;
  Duration processing_;
  std::uint64_t answered_ = 0;
};

}  // namespace fdqos::runtime
