// SimCrashLayer — crash injection (paper §4).
//
// Sits between the monitored application layers and the network. During a
// crash period it silently drops every message in both directions, so the
// layers above appear crashed to the rest of the system; in good periods it
// forwards transparently. The cycle is:
//
//   up for U[MTTC/2, 3·MTTC/2]  →  crashed for TTR (constant)  →  repeat
//
// Crash/restore instants are reported to an observer with their global
// timestamps — the T_D metric is the distance from a crash instant to the
// detector's permanent-suspicion start.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "runtime/layer.hpp"
#include "sim/simulator.hpp"

namespace fdqos::runtime {

class SimCrashLayer final : public Layer {
 public:
  struct Config {
    Duration mttc = Duration::seconds(300);  // mean time to crash
    Duration ttr = Duration::seconds(30);    // constant time to repair
  };

  // observer(time, crashed): crashed = true at crash, false at restore.
  using Observer = std::function<void(TimePoint, bool)>;

  SimCrashLayer(sim::Simulator& simulator, Config config, Rng rng);

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  void start() override;
  void handle_up(const net::Message& msg) override;
  void handle_down(net::Message msg) override;

  bool crashed() const { return crashed_; }
  std::uint64_t crash_count() const { return crashes_; }
  std::uint64_t dropped_messages() const { return dropped_; }

 private:
  Duration sample_time_to_crash();
  void schedule_crash();
  void on_crash();
  void on_restore();

  sim::Simulator& simulator_;
  Config config_;
  Rng rng_;
  Observer observer_;
  bool crashed_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fdqos::runtime
