#include "runtime/ping_responder.hpp"

#include "common/assert.hpp"

namespace fdqos::runtime {

PingResponderLayer::PingResponderLayer(sim::Simulator& simulator,
                                       net::NodeId self, Duration processing)
    : simulator_(simulator), self_(self), processing_(processing) {
  FDQOS_REQUIRE(processing >= Duration::zero());
}

void PingResponderLayer::handle_up(const net::Message& msg) {
  if (msg.type != net::MessageType::kPing || msg.to != self_) {
    deliver_up(msg);
    return;
  }
  ++answered_;
  net::Message pong;
  pong.from = self_;
  pong.to = msg.from;
  pong.type = net::MessageType::kPong;
  pong.seq = msg.seq;
  if (processing_ == Duration::zero()) {
    pong.send_time = simulator_.now();
    send_down(std::move(pong));
    return;
  }
  simulator_.schedule_after(processing_, [this, pong]() mutable {
    pong.send_time = simulator_.now();
    send_down(std::move(pong));
  });
}

}  // namespace fdqos::runtime
