#include "runtime/sim_crash.hpp"

#include "common/assert.hpp"
#include "obs/instruments.hpp"

namespace fdqos::runtime {

SimCrashLayer::SimCrashLayer(sim::Simulator& simulator, Config config, Rng rng)
    : simulator_(simulator), config_(config), rng_(rng) {
  FDQOS_REQUIRE(config_.mttc > Duration::zero());
  FDQOS_REQUIRE(config_.ttr >= Duration::zero());
}

void SimCrashLayer::start() { schedule_crash(); }

Duration SimCrashLayer::sample_time_to_crash() {
  // Uniform in [MTTC/2, 3·MTTC/2] per the paper's SimCrash definition.
  const std::int64_t lo = config_.mttc.count_nanos() / 2;
  const std::int64_t hi = config_.mttc.count_nanos() * 3 / 2;
  return Duration::nanos(rng_.uniform_int(lo, hi));
}

void SimCrashLayer::schedule_crash() {
  simulator_.schedule_after(sample_time_to_crash(), [this] { on_crash(); });
}

void SimCrashLayer::on_crash() {
  FDQOS_ASSERT(!crashed_);
  crashed_ = true;
  ++crashes_;
  if (obs::enabled()) obs::instruments().crash_injections.inc();
  if (observer_) observer_(simulator_.now(), true);
  simulator_.schedule_after(config_.ttr, [this] { on_restore(); });
}

void SimCrashLayer::on_restore() {
  FDQOS_ASSERT(crashed_);
  crashed_ = false;
  if (obs::enabled()) obs::instruments().crash_restores.inc();
  if (observer_) observer_(simulator_.now(), false);
  schedule_crash();
}

void SimCrashLayer::handle_up(const net::Message& msg) {
  if (crashed_) {
    ++dropped_;
    if (obs::enabled()) obs::instruments().crash_dropped_messages_total.inc();
    return;
  }
  deliver_up(msg);
}

void SimCrashLayer::handle_down(net::Message msg) {
  if (crashed_) {
    ++dropped_;
    if (obs::enabled()) obs::instruments().crash_dropped_messages_total.inc();
    return;
  }
  send_down(std::move(msg));
}

}  // namespace fdqos::runtime
