// ProcessNode: a Neko-style process — a node id, a transport binding, and
// an owned stack of layers.
#pragma once

#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "runtime/layer.hpp"

namespace fdqos::runtime {

// Bottom-of-stack adapter: sends go to the transport, received messages
// enter the stack.
class TransportLayer final : public Layer {
 public:
  TransportLayer(net::Transport& transport, net::NodeId node);

  void handle_down(net::Message msg) override;

 private:
  net::Transport& transport_;
};

class ProcessNode {
 public:
  ProcessNode(net::Transport& transport, net::NodeId id);

  net::NodeId id() const { return id_; }

  // Take ownership of `layer` and stack it on the current top. Returns a
  // reference usable for wiring observers.
  template <typename L>
  L& push(std::unique_ptr<L> layer) {
    L& ref = *layer;
    Layer::stack(*top_, ref);
    top_ = &ref;
    start_order_.push_back(&ref);
    owned_.push_back(std::move(layer));
    return ref;
  }

  // Stack `layer` (not owned) on the current top.
  void push_unowned(Layer& layer) {
    Layer::stack(*top_, layer);
    top_ = &layer;
    start_order_.push_back(&layer);
  }

  // Stack `layer` (not owned) on an explicit lower layer — used to fan
  // multiple detectors out over one MultiPlexer.
  void attach_unowned(Layer& lower, Layer& layer) {
    Layer::stack(lower, layer);
    start_order_.push_back(&layer);
  }

  Layer& top() { return *top_; }
  Layer& bottom() { return transport_layer_; }

  // Start every layer, bottom-up in stacking order.
  void start();

 private:
  net::NodeId id_;
  TransportLayer transport_layer_;
  Layer* top_;
  std::vector<std::unique_ptr<Layer>> owned_;
  std::vector<Layer*> start_order_;
};

}  // namespace fdqos::runtime
