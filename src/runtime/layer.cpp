#include "runtime/layer.hpp"

#include "common/assert.hpp"

namespace fdqos::runtime {

void Layer::stack(Layer& lower, Layer& upper) {
  FDQOS_REQUIRE(upper.below_ == nullptr);
  upper.below_ = &lower;
  lower.above_.push_back(&upper);
}

void Layer::send_down(net::Message msg) {
  FDQOS_REQUIRE(below_ != nullptr);
  below_->handle_down(std::move(msg));
}

}  // namespace fdqos::runtime
