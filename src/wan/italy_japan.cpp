#include "wan/italy_japan.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "wan/regime.hpp"

namespace fdqos::wan {
namespace {

// The composite Italy→Japan delay process (see header for the layer-by-
// layer rationale). Regime offsets are produced by reusing the generic
// RegimeSwitchingDelay over ConstantDelay "offset" regimes.
class ItalyJapanDelay final : public DelayModel {
 public:
  explicit ItalyJapanDelay(ItalyJapanParams params)
      : params_(params), offsets_(make_offset_chain(params)) {
    name_ = "italy-japan(ou+regimes+spikes)";
  }

  Duration min_delay() const override {
    return std::min(params_.floor, params_.spike_cap);
  }

  Duration sample(Rng& rng, TimePoint send_time) override {
    const Duration offset = offsets_->sample(rng, send_time);

    // Evolve the OU level to `send_time`.
    const double sd = params_.level_stddev_ms;
    if (!level_initialized_) {
      level_ = rng.normal(0.0, sd);
      level_initialized_ = true;
    } else {
      const double dt =
          (send_time - last_time_).to_seconds_double();
      const double a =
          params_.level_tau_s > 0.0 ? std::exp(-dt / params_.level_tau_s) : 0.0;
      level_ = a * level_ + rng.normal(0.0, sd * std::sqrt(1.0 - a * a));
    }
    last_time_ = send_time;

    const double jitter_ms =
        rng.lognormal(params_.jitter_mu, params_.jitter_sigma);
    double body_ms =
        offset.to_millis_double() + level_ + jitter_ms;
    if (body_ms < 0.0) body_ms = 0.0;

    if (params_.spike_prob > 0.0 && rng.bernoulli(params_.spike_prob)) {
      body_ms += rng.pareto(params_.spike_scale.to_millis_double(),
                            params_.spike_shape);
    }

    const Duration total =
        params_.floor + Duration::from_millis_double(body_ms);
    return std::min(total, params_.spike_cap);
  }

  const std::string& name() const override { return name_; }

  std::unique_ptr<DelayModel> make_fresh() const override {
    return std::make_unique<ItalyJapanDelay>(params_);
  }

 private:
  static std::unique_ptr<RegimeSwitchingDelay> make_offset_chain(
      const ItalyJapanParams& params) {
    std::vector<RegimeSwitchingDelay::Regime> regimes;
    std::vector<std::vector<double>> transition;
    const auto quiet = Duration::from_millis_double(params.quiet_offset_ms);
    const auto busy = Duration::from_millis_double(params.busy_offset_ms);
    if (params.startup_dwell > Duration::zero()) {
      // 0 = startup -> quiet (one way), 1 = quiet <-> 2 = busy.
      regimes.push_back(
          {std::make_unique<ConstantDelay>(
               Duration::from_millis_double(params.startup_offset_ms)),
           params.startup_dwell});
      regimes.push_back(
          {std::make_unique<ConstantDelay>(quiet), params.quiet_dwell});
      regimes.push_back(
          {std::make_unique<ConstantDelay>(busy), params.busy_dwell});
      transition = {{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {0.0, 1.0, 0.0}};
    } else {
      regimes.push_back(
          {std::make_unique<ConstantDelay>(quiet), params.quiet_dwell});
      regimes.push_back(
          {std::make_unique<ConstantDelay>(busy), params.busy_dwell});
      transition = {{0.0, 1.0}, {1.0, 0.0}};
    }
    return std::make_unique<RegimeSwitchingDelay>(std::move(regimes),
                                                  std::move(transition), 0);
  }

  std::string name_;
  ItalyJapanParams params_;
  std::unique_ptr<RegimeSwitchingDelay> offsets_;
  double level_ = 0.0;
  bool level_initialized_ = false;
  TimePoint last_time_ = TimePoint::origin();
};

}  // namespace

std::unique_ptr<DelayModel> make_italy_japan_delay(
    const ItalyJapanParams& params) {
  return std::make_unique<ItalyJapanDelay>(params);
}

std::unique_ptr<LossModel> make_italy_japan_loss(
    const ItalyJapanParams& params) {
  return std::make_unique<GilbertElliottLoss>(params.loss);
}

LinkCharacteristics measure_link(DelayModel& delay, LossModel& loss,
                                 std::size_t n, Duration period, Rng& rng) {
  FDQOS_REQUIRE(n > 0);
  LinkCharacteristics out;
  stats::RunningStats delays;
  std::size_t dropped = 0;
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < n; ++i, t += period) {
    if (loss.drop(rng, t)) {
      ++dropped;
      continue;
    }
    delays.add(delay.sample(rng, t).to_millis_double());
  }
  out.delay_ms = delays.summary();
  out.loss_probability = static_cast<double>(dropped) / static_cast<double>(n);
  out.messages = n;
  return out;
}

}  // namespace fdqos::wan
