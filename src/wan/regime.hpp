// Regime-switching delay process.
//
// WAN behaviour changes over time — congestion in peak hours, quiet
// weekends (paper §2.2). A RegimeSwitchingDelay holds several regimes, each
// a (delay model, mean dwell time) pair; it stays in a regime for an
// exponentially distributed dwell and then jumps according to a transition
// matrix. This is the non-stationarity that adaptive detectors exist for,
// and what the ARIMA refit cadence (N_Arima = 1000) is meant to track.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wan/delay_model.hpp"

namespace fdqos::wan {

class RegimeSwitchingDelay final : public DelayModel {
 public:
  struct Regime {
    std::unique_ptr<DelayModel> model;
    Duration mean_dwell;
  };

  // `transition[i][j]` = probability of jumping from regime i to regime j
  // when i's dwell expires; rows must sum to 1 (self-loops allowed).
  RegimeSwitchingDelay(std::vector<Regime> regimes,
                       std::vector<std::vector<double>> transition,
                       std::size_t initial_regime = 0);

  Duration sample(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

  std::size_t current_regime() const { return current_; }
  std::size_t regime_count() const { return regimes_.size(); }

 private:
  void maybe_switch(Rng& rng, TimePoint now);

  std::string name_;
  std::vector<Regime> regimes_;
  std::vector<std::vector<double>> transition_;
  std::size_t initial_;
  std::size_t current_;
  TimePoint regime_end_ = TimePoint::origin();
  bool dwell_armed_ = false;
};

}  // namespace fdqos::wan
