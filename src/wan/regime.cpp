#include "wan/regime.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::wan {

RegimeSwitchingDelay::RegimeSwitchingDelay(
    std::vector<Regime> regimes, std::vector<std::vector<double>> transition,
    std::size_t initial_regime)
    : regimes_(std::move(regimes)),
      transition_(std::move(transition)),
      initial_(initial_regime),
      current_(initial_regime) {
  FDQOS_REQUIRE(!regimes_.empty());
  FDQOS_REQUIRE(initial_regime < regimes_.size());
  FDQOS_REQUIRE(transition_.size() == regimes_.size());
  for (const auto& row : transition_) {
    FDQOS_REQUIRE(row.size() == regimes_.size());
    double sum = 0.0;
    for (double p : row) {
      FDQOS_REQUIRE(p >= 0.0);
      sum += p;
    }
    FDQOS_REQUIRE(std::fabs(sum - 1.0) < 1e-9);
  }
  for (const auto& r : regimes_) {
    FDQOS_REQUIRE(r.model != nullptr);
    FDQOS_REQUIRE(r.mean_dwell > Duration::zero());
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "regimes(%zu)", regimes_.size());
  name_ = buf;
}

void RegimeSwitchingDelay::maybe_switch(Rng& rng, TimePoint now) {
  if (!dwell_armed_) {
    regime_end_ = now + Duration::from_seconds_double(rng.exponential(
                            regimes_[current_].mean_dwell.to_seconds_double()));
    dwell_armed_ = true;
    return;
  }
  // Possibly several regime changes elapsed between messages.
  while (now >= regime_end_) {
    const double u = rng.next_double();
    double cum = 0.0;
    std::size_t next = current_;
    for (std::size_t j = 0; j < transition_[current_].size(); ++j) {
      cum += transition_[current_][j];
      if (u < cum) {
        next = j;
        break;
      }
    }
    current_ = next;
    regime_end_ =
        regime_end_ + Duration::from_seconds_double(rng.exponential(
                          regimes_[current_].mean_dwell.to_seconds_double()));
  }
}

Duration RegimeSwitchingDelay::sample(Rng& rng, TimePoint send_time) {
  maybe_switch(rng, send_time);
  return regimes_[current_].model->sample(rng, send_time);
}

std::unique_ptr<DelayModel> RegimeSwitchingDelay::make_fresh() const {
  std::vector<Regime> regimes;
  regimes.reserve(regimes_.size());
  for (const auto& r : regimes_) {
    regimes.push_back({r.model->make_fresh(), r.mean_dwell});
  }
  return std::make_unique<RegimeSwitchingDelay>(std::move(regimes), transition_,
                                                initial_);
}

}  // namespace fdqos::wan
