// Delay-trace recording and replay.
//
// The paper's §6 plans re-running the experiments on other WAN connections;
// recording lets a user capture a real link's one-way delays (e.g. via the
// UDP transport) and replay them deterministically through the whole 30-FD
// comparison. A replayed trace is also the strongest calibration check for
// the synthetic models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wan/delay_model.hpp"

namespace fdqos::wan {

// Collects (send_time, delay) pairs; serializes to a simple CSV.
class TraceRecorder {
 public:
  void record(TimePoint send_time, Duration delay);

  std::size_t size() const { return delays_.size(); }
  const std::vector<Duration>& delays() const { return delays_; }
  const std::vector<TimePoint>& send_times() const { return send_times_; }

  // Delay values in milliseconds (for the stats/forecast layers).
  std::vector<double> delays_ms() const;

  bool save(const std::string& path) const;

 private:
  std::vector<TimePoint> send_times_;
  std::vector<Duration> delays_;
};

// Wraps another DelayModel, recording every sample it produces.
class RecordingDelay final : public DelayModel {
 public:
  RecordingDelay(std::unique_ptr<DelayModel> inner, TraceRecorder& recorder);
  Duration sample(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

 private:
  std::string name_;
  std::unique_ptr<DelayModel> inner_;
  TraceRecorder& recorder_;
};

// Replays a fixed delay sequence; wraps around at the end (with a warning
// the first time) so long experiments can run on short traces.
class TraceReplayDelay final : public DelayModel {
 public:
  explicit TraceReplayDelay(std::vector<Duration> delays);
  // Replays shared immutable trace data without copying it. Several
  // replayers (e.g. one per concurrent experiment run) can share one
  // loaded trace; the replay cursor is per-instance.
  explicit TraceReplayDelay(std::shared_ptr<const std::vector<Duration>> delays);

  // Loads the CSV produced by TraceRecorder::save. Returns nullptr on
  // I/O or parse failure.
  static std::unique_ptr<TraceReplayDelay> load(const std::string& path);
  // Loads just the delay column, for sharing across many replayers.
  // Returns nullptr on I/O or parse failure.
  static std::shared_ptr<const std::vector<Duration>> load_trace_data(
      const std::string& path);

  Duration sample(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

  std::size_t size() const { return delays_->size(); }

 private:
  std::string name_;
  std::shared_ptr<const std::vector<Duration>> delays_;
  std::size_t next_ = 0;
  bool warned_wrap_ = false;
};

}  // namespace fdqos::wan
