// Compatibility forwarder — the trace capture/replay layer grew into the
// wan::tracestore subsystem (versioned .fdt format, recorder shards,
// replay policies). All the familiar names (TraceRecorder, RecordingDelay,
// TraceReplayDelay) live there now; include "wan/tracestore.hpp" directly
// in new code.
#pragma once

#include "wan/tracestore.hpp"
