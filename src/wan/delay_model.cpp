#include "wan/delay_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::wan {

ConstantDelay::ConstantDelay(Duration d) : delay_(d) {
  FDQOS_REQUIRE(d >= Duration::zero());
  name_ = "const(" + d.to_string() + ")";
}

Duration ConstantDelay::sample(Rng&, TimePoint) { return delay_; }

std::unique_ptr<DelayModel> ConstantDelay::make_fresh() const {
  return std::make_unique<ConstantDelay>(delay_);
}

UniformDelay::UniformDelay(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
  FDQOS_REQUIRE(Duration::zero() <= lo && lo <= hi);
  name_ = "uniform(" + lo.to_string() + "," + hi.to_string() + ")";
}

Duration UniformDelay::sample(Rng& rng, TimePoint) {
  return Duration::nanos(rng.uniform_int(lo_.count_nanos(), hi_.count_nanos()));
}

std::unique_ptr<DelayModel> UniformDelay::make_fresh() const {
  return std::make_unique<UniformDelay>(lo_, hi_);
}

ShiftedLognormalDelay::ShiftedLognormalDelay(Duration shift, double mu_log_ms,
                                             double sigma_log)
    : shift_(shift), mu_(mu_log_ms), sigma_(sigma_log) {
  FDQOS_REQUIRE(shift >= Duration::zero());
  FDQOS_REQUIRE(sigma_log >= 0.0);
  char buf[96];
  std::snprintf(buf, sizeof buf, "lognormal(shift=%s,mu=%.3f,sigma=%.3f)",
                shift.to_string().c_str(), mu_, sigma_);
  name_ = buf;
}

Duration ShiftedLognormalDelay::sample(Rng& rng, TimePoint) {
  return shift_ + Duration::from_millis_double(rng.lognormal(mu_, sigma_));
}

std::unique_ptr<DelayModel> ShiftedLognormalDelay::make_fresh() const {
  return std::make_unique<ShiftedLognormalDelay>(shift_, mu_, sigma_);
}

ShiftedGammaDelay::ShiftedGammaDelay(Duration shift, double shape,
                                     double scale_ms)
    : shift_(shift), shape_(shape), scale_ms_(scale_ms) {
  FDQOS_REQUIRE(shift >= Duration::zero());
  FDQOS_REQUIRE(shape > 0.0 && scale_ms > 0.0);
  char buf[96];
  std::snprintf(buf, sizeof buf, "gamma(shift=%s,k=%.3f,theta=%.3fms)",
                shift.to_string().c_str(), shape_, scale_ms_);
  name_ = buf;
}

Duration ShiftedGammaDelay::sample(Rng& rng, TimePoint) {
  return shift_ + Duration::from_millis_double(rng.gamma(shape_, scale_ms_));
}

std::unique_ptr<DelayModel> ShiftedGammaDelay::make_fresh() const {
  return std::make_unique<ShiftedGammaDelay>(shift_, shape_, scale_ms_);
}

SpikeMixtureDelay::SpikeMixtureDelay(std::unique_ptr<DelayModel> base,
                                     double spike_prob, Duration spike_scale,
                                     double spike_shape, Duration spike_cap)
    : base_(std::move(base)),
      spike_prob_(spike_prob),
      spike_scale_(spike_scale),
      spike_shape_(spike_shape),
      spike_cap_(spike_cap) {
  FDQOS_REQUIRE(base_ != nullptr);
  FDQOS_REQUIRE(spike_prob >= 0.0 && spike_prob <= 1.0);
  FDQOS_REQUIRE(spike_shape > 0.0);
  // A Pareto scale must be strictly positive and the cap must leave room
  // for at least the scale, or every sample degenerates to the cap.
  FDQOS_REQUIRE(spike_scale > Duration::zero());
  FDQOS_REQUIRE(spike_cap >= spike_scale);
  char buf[128];
  std::snprintf(buf, sizeof buf, "spikes(p=%.4f,scale=%s,alpha=%.2f)+%s",
                spike_prob_, spike_scale_.to_string().c_str(), spike_shape_,
                base_->name().c_str());
  name_ = buf;
}

Duration SpikeMixtureDelay::sample(Rng& rng, TimePoint send_time) {
  Duration d = base_->sample(rng, send_time);
  if (spike_prob_ > 0.0 && rng.bernoulli(spike_prob_)) {
    const double spike_ms =
        rng.pareto(spike_scale_.to_millis_double(), spike_shape_);
    d += Duration::from_millis_double(spike_ms);
  }
  // The cap bounds the whole mixture (body tails included): it models the
  // worst delay ever observed on the path (Table 4's 340 ms maximum).
  return std::min(d, spike_cap_);
}

std::unique_ptr<DelayModel> SpikeMixtureDelay::make_fresh() const {
  return std::make_unique<SpikeMixtureDelay>(base_->make_fresh(), spike_prob_,
                                             spike_scale_, spike_shape_,
                                             spike_cap_);
}

}  // namespace fdqos::wan
