// wan::tracestore — robust delay-trace capture and replay.
//
// The paper's core methodology is trace-based comparison: one recorded
// heartbeat-delay trace (Italy→Japan in the paper) is fed identically to
// all 30 detectors so their QoS differences reflect the algorithms, not
// network luck. This subsystem makes that workflow production-grade:
//
//  * Trace / TraceMeta — an in-memory trace: nanosecond send-time + delay
//    records plus provenance metadata (schema version, clock base, source).
//  * .fdt binary format — versioned, self-describing, streamable
//    (TraceFdtWriter) with a validating loader that reports precise errors
//    instead of aborting. Lossless CSV import/export keeps the existing
//    `send_time_ns,delay_ns` text format interchangeable.
//  * TraceRecorderHub — per-clone recorder shards. Every RecordingDelay
//    clone (make_fresh) records into its own shard, so concurrent
//    experiment runs never share mutable state; shards merge in
//    deterministic key order afterwards.
//  * ReplayPolicy — what TraceReplayDelay does at trace end: `truncate`
//    (the experiment must not outrun the trace), `wrap` (loop, the old
//    behaviour, now explicit opt-in) or `extend` (resample the tail from a
//    model fitted to the recorded delays).
//
// See docs/tracestore.md for the format specification and the
// `fdqos record` / `fdqos replay` CLI walkthrough.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "wan/delay_model.hpp"

namespace fdqos::wan {

// ---------------------------------------------------------------------------
// Trace data + metadata

inline constexpr std::uint32_t kTraceSchemaVersion = 1;

struct TraceMeta {
  std::uint32_t schema_version = kTraceSchemaVersion;
  // Origin of the send-time column on the capturing host's timeline
  // (nanoseconds; 0 for simulated captures whose timeline starts at the
  // experiment origin).
  std::int64_t clock_base_ns = 0;
  // Free-form provenance: link model + parameters, chaos scenario, capture
  // host — whatever identifies where the samples came from.
  std::string source;
};

// One delay trace: parallel send-time / delay columns plus metadata.
// Delays are one-way message delays; a message lost in transit simply has
// no record (the capture path samples loss before delay, mirroring the
// simulated link).
struct Trace {
  TraceMeta meta;
  std::vector<TimePoint> send_times;
  std::vector<Duration> delays;

  std::size_t size() const { return delays.size(); }
  bool empty() const { return delays.empty(); }
  // Delay values in milliseconds (for the stats/forecast layers).
  std::vector<double> delays_ms() const;
};

// ---------------------------------------------------------------------------
// Load / save (.fdt binary + CSV text)

struct TraceLoadResult {
  std::shared_ptr<const Trace> trace;  // null on failure
  std::string error;                   // human-readable; names the offending
                                       // line / record on parse failures
  bool ok() const { return trace != nullptr; }
};

// Sniffs the format (.fdt magic vs. CSV text) and dispatches. Loading
// never aborts: every malformed input — bad magic, truncated header or
// records, unsupported version, unparsable or negative values — comes back
// as TraceLoadResult::error.
TraceLoadResult load_trace(const std::string& path);
TraceLoadResult load_trace_fdt(const std::string& path);
TraceLoadResult load_trace_csv(const std::string& path);

// Writers. Both return false (and fill *error when given) on I/O failure;
// CSV is byte-compatible with the legacy TraceRecorder::save format.
bool save_trace_fdt(const Trace& trace, const std::string& path,
                    std::string* error = nullptr);
bool save_trace_csv(const Trace& trace, const std::string& path,
                    std::string* error = nullptr);

// Streaming .fdt writer for long captures: the header goes out first with a
// zero sample count, records append one by one, finalize() patches the
// count. A writer abandoned without finalize() leaves a file the loader
// rejects as truncated — deliberately: a partial capture is not a trace.
class TraceFdtWriter {
 public:
  TraceFdtWriter(const std::string& path, TraceMeta meta);
  ~TraceFdtWriter();

  TraceFdtWriter(const TraceFdtWriter&) = delete;
  TraceFdtWriter& operator=(const TraceFdtWriter&) = delete;

  bool append(TimePoint send_time, Duration delay);
  // Patches the sample count into the header and closes. Idempotent.
  bool finalize();

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::uint64_t samples_written() const { return count_; }

 private:
  void fail(const std::string& what);
  std::FILE* file_ = nullptr;
  bool ok_ = false;
  bool finalized_ = false;
  std::uint64_t count_ = 0;
  std::string error_;
};

// Segmented continuous capture for long-running daemons (`fdqos serve`):
// appends stream into numbered .fdt segments (<prefix>-00000.fdt,
// <prefix>-00001.fdt, ...) under one directory, rotating after
// `max_samples` records so every segment but the live one is a complete,
// finalized trace that `fdqos replay` accepts while the capture is still
// running. finalize() closes the live segment; empty live segments are
// deleted rather than left as 0-sample files the loader rejects.
class RotatingFdtWriter {
 public:
  struct Options {
    std::string directory = ".";
    std::string prefix = "capture";
    std::uint64_t max_samples = 1'000'000;  // per segment
    TraceMeta meta;
  };

  explicit RotatingFdtWriter(Options opts);
  ~RotatingFdtWriter();

  RotatingFdtWriter(const RotatingFdtWriter&) = delete;
  RotatingFdtWriter& operator=(const RotatingFdtWriter&) = delete;

  bool append(TimePoint send_time, Duration delay);
  // Finalizes the live segment. Idempotent; append() after finalize()
  // fails. Returns false if any segment (including past rotations) failed.
  bool finalize();

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::uint64_t samples_written() const { return total_samples_; }
  // Paths of completed (finalized, non-empty) segments, oldest first.
  const std::vector<std::string>& segments() const { return segments_; }

 private:
  std::string segment_path(std::size_t index) const;
  bool open_segment();
  bool close_segment();

  Options opts_;
  std::unique_ptr<TraceFdtWriter> writer_;  // live segment, null when closed
  std::string live_path_;
  std::size_t next_index_ = 0;
  std::uint64_t total_samples_ = 0;
  std::vector<std::string> segments_;
  bool ok_ = true;
  bool finalized_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Recording

// Collects (send_time, delay) pairs in memory; one recorder is single-
// threaded state — concurrent recording wants one shard per thread via
// TraceRecorderHub.
class TraceRecorder {
 public:
  void record(TimePoint send_time, Duration delay);

  std::size_t size() const { return delays_.size(); }
  const std::vector<Duration>& delays() const { return delays_; }
  const std::vector<TimePoint>& send_times() const { return send_times_; }
  std::vector<double> delays_ms() const;

  // Legacy single-shard CSV export (same bytes as save_trace_csv).
  bool save(const std::string& path) const;

 private:
  std::vector<TimePoint> send_times_;
  std::vector<Duration> delays_;
};

// Thread-safe shard registry. Each recording clone owns one shard for its
// exclusive use; creating/looking up shards is mutex-guarded, recording
// into a shard is not (it never needs to be — one shard, one thread).
// merged() concatenates shards in ascending key order, so captures keyed by
// run index reassemble identically regardless of which worker thread ran
// which run.
class TraceRecorderHub {
 public:
  // Shard for a deterministic key (e.g. the experiment run index). The
  // reference stays valid for the hub's lifetime.
  TraceRecorder& shard(std::uint64_t key);
  // Shard under the next automatic key. Auto keys start above 2^32 so
  // explicitly keyed shards always merge first; the order of auto shards
  // among themselves follows creation order, which under concurrent
  // make_fresh() is scheduling-dependent — key explicitly when merge order
  // must be reproducible.
  TraceRecorder& fresh_shard();

  std::size_t shard_count() const;
  std::size_t total_samples() const;

  // All shards concatenated in ascending key order. Call after recording
  // threads have joined.
  Trace merged(TraceMeta meta = {}) const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<TraceRecorder>> shards_;
  std::uint64_t next_auto_key_ = std::uint64_t{1} << 32;
};

// Wraps another DelayModel, recording every sample into its own hub shard.
// make_fresh() clones get a fresh shard — never shared mutable state, so
// parallel runs can each record their stream (the fix for the cross-thread
// recorder aliasing the old TraceRecorder&-based design had).
class RecordingDelay final : public DelayModel {
 public:
  // Records into hub shard `key` (deterministic merge position).
  RecordingDelay(std::unique_ptr<DelayModel> inner,
                 std::shared_ptr<TraceRecorderHub> hub, std::uint64_t key);
  // Records into a fresh auto-keyed shard.
  RecordingDelay(std::unique_ptr<DelayModel> inner,
                 std::shared_ptr<TraceRecorderHub> hub);

  Duration sample(Rng& rng, TimePoint send_time) override;
  Duration min_delay() const override { return inner_->min_delay(); }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

  const TraceRecorder& recorder() const { return *shard_; }

 private:
  std::string name_;
  std::unique_ptr<DelayModel> inner_;
  std::shared_ptr<TraceRecorderHub> hub_;
  TraceRecorder* shard_;  // owned by hub_, exclusive to this instance
};

// ---------------------------------------------------------------------------
// Replay

enum class ReplayPolicy {
  kTruncate,  // the experiment ends with the trace; sampling past the end
              // is an overrun (counted, logged once, last delay repeated)
  kWrap,      // loop back to the start (legacy behaviour, explicit opt-in)
  kExtend,    // resample the tail from a model fitted to the trace
};

const char* replay_policy_name(ReplayPolicy policy);
// Parses "truncate" / "wrap" / "extend"; nullopt on anything else.
std::optional<ReplayPolicy> parse_replay_policy(const std::string& text);

// Tail model for ReplayPolicy::kExtend: shifted log-normal fitted by the
// method of moments to (delay − floor), capped at the observed maximum —
// the same floor-plus-right-skewed-body shape the calibrated WAN models
// use. Degenerate traces (constant delay) extend with that constant.
struct TraceTailModel {
  Duration floor = Duration::zero();
  Duration cap = Duration::zero();
  double mu = 0.0;     // log-millisecond parameters of the excess body
  double sigma = 0.0;
  bool degenerate = true;

  Duration sample(Rng& rng) const;
};

TraceTailModel fit_trace_tail(const std::vector<Duration>& delays);

// Replays a fixed delay sequence; end-of-trace behaviour per ReplayPolicy.
class TraceReplayDelay final : public DelayModel {
 public:
  explicit TraceReplayDelay(std::vector<Duration> delays,
                            ReplayPolicy policy = ReplayPolicy::kWrap);
  // Replays shared immutable trace data without copying it. Several
  // replayers (e.g. one per concurrent experiment run) can share one
  // loaded trace; the replay cursor is per-instance.
  explicit TraceReplayDelay(
      std::shared_ptr<const std::vector<Duration>> delays,
      ReplayPolicy policy = ReplayPolicy::kWrap);

  // Loads a trace file (.fdt or CSV). Returns nullptr on failure; the
  // richer error comes from load_trace().
  static std::unique_ptr<TraceReplayDelay> load(
      const std::string& path, ReplayPolicy policy = ReplayPolicy::kWrap);
  // Loads just the delay column, for sharing across many replayers.
  // Returns nullptr on I/O or parse failure.
  static std::shared_ptr<const std::vector<Duration>> load_trace_data(
      const std::string& path);

  Duration sample(Rng& rng, TimePoint send_time) override;
  // Minimum delay in the trace (zero under kExtend, whose fitted tail can
  // undercut it) — the replay channel's conservative lookahead.
  Duration min_delay() const override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

  std::size_t size() const { return delays_->size(); }
  ReplayPolicy policy() const { return policy_; }
  // Cursor position; >= size() means the trace proper is exhausted.
  std::size_t position() const { return next_; }
  bool exhausted() const { return next_ >= delays_->size(); }
  // kTruncate samples drawn past the end (a correctly truncated experiment
  // never overruns; non-zero means the caller outran the trace).
  std::uint64_t overruns() const { return overruns_; }
  // kExtend samples drawn from the fitted tail model.
  std::uint64_t extended_samples() const { return extended_; }

 private:
  std::string name_;
  std::shared_ptr<const std::vector<Duration>> delays_;
  ReplayPolicy policy_;
  Duration min_delay_ = Duration::zero();
  TraceTailModel tail_;  // fitted only for kExtend
  std::size_t next_ = 0;
  std::uint64_t overruns_ = 0;
  std::uint64_t extended_ = 0;
  bool warned_end_ = false;
};

}  // namespace fdqos::wan
