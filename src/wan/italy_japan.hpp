// The calibrated Italy→Japan link model (paper Table 4).
//
// The experiments ran between a host in Italy (ADSL) and one at JAIST,
// Japan: 18 hops, mean one-way delay ≈ 200 ms, sample standard deviation
// 7.6 ms, minimum 192 ms, maximum 340 ms, loss probability < 1 %, described
// by the authors as "quite stable". We model it as:
//
//   delay = 192 ms propagation floor
//         + regime offset (startup → quiet ↔ busy Markov chain)
//         + Ornstein–Uhlenbeck queueing level (slowly drifting, AR(1))
//         + small log-normal per-packet jitter
//         + rare Pareto spikes, everything capped at 340 ms
//   loss  = Gilbert–Elliott chain with ≈ 0.5 % stationary loss
//
// The three stochastic layers each carry one of the paper's qualitative
// findings:
//  * The OU level gives the series exploitable AR structure: ARIMA (which
//    fits it) is distinctly more accurate than the fixed-gain filters
//    (Table 3), which in turn makes ARIMA+SM_JAC's margin dangerously
//    small — the paper's "a better predictor does not imply a better
//    detector" result.
//  * The startup regime (a run begins congested and settles, one-way
//    transition into quiet) makes the cumulative MEAN predictor carry a
//    persistent positive bias — why the paper sees MEAN with the longest
//    detection times everywhere (Figures 4/5).
//  * Jitter, spikes and the cap pin Table 4's envelope: floor 192 ms,
//    mean ≈ 200 ms, σ ≈ 8 ms, max 340 ms.
#pragma once

#include <memory>

#include "stats/running_stats.hpp"
#include "wan/delay_model.hpp"
#include "wan/loss_model.hpp"

namespace fdqos::wan {

struct ItalyJapanParams {
  Duration floor = Duration::millis(192);
  // Per-packet jitter (log-normal, in ms): mean ≈ 3 ms, sd ≈ 2 ms.
  double jitter_mu = 0.915;
  double jitter_sigma = 0.606;
  // Ornstein–Uhlenbeck queueing level: stationary sd and correlation time.
  double level_stddev_ms = 6.0;
  double level_tau_s = 15.0;
  // Regime offsets (added to the level) and mean dwell times.
  double quiet_offset_ms = 2.0;
  Duration quiet_dwell = Duration::seconds(240);
  double busy_offset_ms = 9.0;
  Duration busy_dwell = Duration::seconds(60);
  // Startup transient: the run begins congested and settles (one-way
  // transition into quiet). Set the dwell to zero to disable.
  double startup_offset_ms = 25.0;
  Duration startup_dwell = Duration::seconds(1000);
  // Spikes.
  double spike_prob = 0.003;
  Duration spike_scale = Duration::millis(30);
  double spike_shape = 1.5;
  Duration spike_cap = Duration::millis(340);
  // Loss chain.
  GilbertElliottLoss::Params loss{0.0005, 0.05, 0.0008, 0.4};
};

std::unique_ptr<DelayModel> make_italy_japan_delay(
    const ItalyJapanParams& params = {});

std::unique_ptr<LossModel> make_italy_japan_loss(
    const ItalyJapanParams& params = {});

// Offline characterization of a delay/loss pair (the Table 4 measurement):
// draws `n` messages at the given period and summarizes.
struct LinkCharacteristics {
  stats::Summary delay_ms;
  double loss_probability = 0.0;
  std::size_t messages = 0;
};

LinkCharacteristics measure_link(DelayModel& delay, LossModel& loss,
                                 std::size_t n, Duration period, Rng& rng);

}  // namespace fdqos::wan
