// Message-loss processes for the fair-lossy link.
//
// Fair-lossy per the paper (§2.2): the link may drop messages but never
// creates, corrupts, or duplicates them — UDP semantics. Loss models decide
// per-message drops; burstiness comes from the Gilbert–Elliott two-state
// chain, which matches measured WAN loss far better than independent drops.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace fdqos::wan {

class LossModel {
 public:
  virtual ~LossModel() = default;

  // True when the message sent at `send_time` must be dropped.
  virtual bool drop(Rng& rng, TimePoint send_time) = 0;

  virtual const std::string& name() const = 0;
  virtual std::unique_ptr<LossModel> make_fresh() const = 0;
};

// Independent drops with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool drop(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<LossModel> make_fresh() const override;

  double probability() const { return p_; }

 private:
  std::string name_;
  double p_;
};

// Gilbert–Elliott: a two-state (Good/Bad) Markov chain evaluated per
// message; each state has its own loss probability. Produces loss bursts.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.0005;
    double p_bad_to_good = 0.05;
    double loss_good = 0.001;
    double loss_bad = 0.3;
  };
  explicit GilbertElliottLoss(Params params);
  bool drop(Rng& rng, TimePoint send_time) override;
  const std::string& name() const override { return name_; }
  std::unique_ptr<LossModel> make_fresh() const override;

  bool in_bad_state() const { return bad_; }
  // Stationary loss probability implied by the chain parameters.
  double stationary_loss() const;

 private:
  std::string name_;
  Params params_;
  bool bad_ = false;
};

}  // namespace fdqos::wan
