// One-way message-delay processes (the WAN substitute, DESIGN.md §2).
//
// The paper measured a real Italy→Japan path; we replace it with stochastic
// delay processes whose parameters are calibrated to the paper's Table 4.
// A DelayModel is sampled once per message send; models may be stateful
// (regimes, spikes with decay), so sampling passes the current time and the
// model owns any evolution.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace fdqos::wan {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  // Delay for a message sent at `send_time`. Must be non-negative.
  virtual Duration sample(Rng& rng, TimePoint send_time) = 0;

  // Hard lower bound on every delay sample() can ever return — the channel
  // lookahead the conservative parallel engine derives its safe windows
  // from (see sim/horizon.hpp and docs/pdes.md). The default, zero, is
  // always safe (it only costs parallelism, never correctness); models with
  // a known propagation floor override it.
  virtual Duration min_delay() const { return Duration::zero(); }

  virtual const std::string& name() const = 0;

  // Fresh instance with identical parameters and reset state.
  virtual std::unique_ptr<DelayModel> make_fresh() const = 0;
};

// Fixed delay — degenerate baseline and a useful test instrument.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Duration d);
  Duration sample(Rng& rng, TimePoint send_time) override;
  Duration min_delay() const override { return delay_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

 private:
  std::string name_;
  Duration delay_;
};

// Uniform in [lo, hi).
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration lo, Duration hi);
  Duration sample(Rng& rng, TimePoint send_time) override;
  Duration min_delay() const override { return lo_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

 private:
  std::string name_;
  Duration lo_;
  Duration hi_;
};

// shift + LogNormal(mu, sigma): the canonical WAN one-way-delay body — a
// hard propagation floor plus a right-skewed queueing component.
// mu/sigma parameterize the underlying normal in log-milliseconds.
class ShiftedLognormalDelay final : public DelayModel {
 public:
  ShiftedLognormalDelay(Duration shift, double mu_log_ms, double sigma_log);
  Duration sample(Rng& rng, TimePoint send_time) override;
  Duration min_delay() const override { return shift_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

  Duration shift() const { return shift_; }

 private:
  std::string name_;
  Duration shift_;
  double mu_;
  double sigma_;
};

// shift + Gamma(shape, scale ms): alternative body with lighter tail.
class ShiftedGammaDelay final : public DelayModel {
 public:
  ShiftedGammaDelay(Duration shift, double shape, double scale_ms);
  Duration sample(Rng& rng, TimePoint send_time) override;
  Duration min_delay() const override { return shift_; }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

 private:
  std::string name_;
  Duration shift_;
  double shape_;
  double scale_ms_;
};

// Mixture: with probability `spike_prob` adds a Pareto spike on top of the
// base model — models transient cross-traffic bursts / route flaps that
// produce the paper's 340 ms outliers over a ~200 ms floor.
class SpikeMixtureDelay final : public DelayModel {
 public:
  SpikeMixtureDelay(std::unique_ptr<DelayModel> base, double spike_prob,
                    Duration spike_scale, double spike_shape,
                    Duration spike_cap);
  Duration sample(Rng& rng, TimePoint send_time) override;
  // The cap bounds the whole mixture, so it can undercut the base's floor.
  Duration min_delay() const override {
    return std::min(base_->min_delay(), spike_cap_);
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<DelayModel> make_fresh() const override;

 private:
  std::string name_;
  std::unique_ptr<DelayModel> base_;
  double spike_prob_;
  Duration spike_scale_;
  double spike_shape_;
  Duration spike_cap_;
};

}  // namespace fdqos::wan
