#include "wan/trace.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::wan {

void TraceRecorder::record(TimePoint send_time, Duration delay) {
  send_times_.push_back(send_time);
  delays_.push_back(delay);
}

std::vector<double> TraceRecorder::delays_ms() const {
  std::vector<double> out;
  out.reserve(delays_.size());
  for (Duration d : delays_) out.push_back(d.to_millis_double());
  return out;
}

bool TraceRecorder::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("send_time_ns,delay_ns\n", f);
  bool ok = true;
  for (std::size_t i = 0; i < delays_.size(); ++i) {
    ok = ok && std::fprintf(f, "%lld,%lld\n",
                            static_cast<long long>(send_times_[i].count_nanos()),
                            static_cast<long long>(delays_[i].count_nanos())) > 0;
  }
  return std::fclose(f) == 0 && ok;
}

RecordingDelay::RecordingDelay(std::unique_ptr<DelayModel> inner,
                               TraceRecorder& recorder)
    : inner_(std::move(inner)), recorder_(recorder) {
  FDQOS_REQUIRE(inner_ != nullptr);
  name_ = "recording(" + inner_->name() + ")";
}

Duration RecordingDelay::sample(Rng& rng, TimePoint send_time) {
  const Duration d = inner_->sample(rng, send_time);
  recorder_.record(send_time, d);
  return d;
}

std::unique_ptr<DelayModel> RecordingDelay::make_fresh() const {
  return std::make_unique<RecordingDelay>(inner_->make_fresh(), recorder_);
}

TraceReplayDelay::TraceReplayDelay(std::vector<Duration> delays)
    : TraceReplayDelay(std::make_shared<const std::vector<Duration>>(
          std::move(delays))) {}

TraceReplayDelay::TraceReplayDelay(
    std::shared_ptr<const std::vector<Duration>> delays)
    : delays_(std::move(delays)) {
  FDQOS_REQUIRE(delays_ != nullptr && !delays_->empty());
  char buf[48];
  std::snprintf(buf, sizeof buf, "trace(%zu)", delays_->size());
  name_ = buf;
}

std::unique_ptr<TraceReplayDelay> TraceReplayDelay::load(
    const std::string& path) {
  auto delays = load_trace_data(path);
  if (delays == nullptr) return nullptr;
  return std::make_unique<TraceReplayDelay>(std::move(delays));
}

std::shared_ptr<const std::vector<Duration>> TraceReplayDelay::load_trace_data(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return nullptr;
  char line[128];
  std::vector<Duration> delays;
  bool first = true;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (first) {  // header
      first = false;
      continue;
    }
    long long send_ns = 0;
    long long delay_ns = 0;
    if (std::sscanf(line, "%lld,%lld", &send_ns, &delay_ns) != 2) {
      std::fclose(f);
      return nullptr;
    }
    delays.push_back(Duration::nanos(delay_ns));
  }
  std::fclose(f);
  if (delays.empty()) return nullptr;
  return std::make_shared<const std::vector<Duration>>(std::move(delays));
}

Duration TraceReplayDelay::sample(Rng&, TimePoint) {
  if (next_ >= delays_->size()) {
    if (!warned_wrap_) {
      FDQOS_LOG_WARN("trace replay wrapped after %zu samples",
                     delays_->size());
      warned_wrap_ = true;
    }
    next_ = 0;
  }
  return (*delays_)[next_++];
}

std::unique_ptr<DelayModel> TraceReplayDelay::make_fresh() const {
  return std::make_unique<TraceReplayDelay>(delays_);
}

}  // namespace fdqos::wan
