#include "wan/tracestore.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::wan {
namespace {

// .fdt layout (all integers little-endian):
//   offset  0  char[8]  magic "FDQTRCE\0"
//   offset  8  u32      schema version
//   offset 12  u32      source length S (bytes; capped at 1 MiB)
//   offset 16  u64      sample count N
//   offset 24  i64      clock base (ns)
//   offset 32  char[S]  source (not NUL-terminated)
//   then N records of { i64 send_time_ns, i64 delay_ns }.
constexpr char kMagic[8] = {'F', 'D', 'Q', 'T', 'R', 'C', 'E', '\0'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kRecordBytes = 16;
constexpr std::uint32_t kMaxSourceBytes = 1u << 20;
constexpr long kCountOffset = 16;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::int64_t get_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

std::string fdt_header(const TraceMeta& meta, std::uint64_t count) {
  std::string out(kMagic, sizeof kMagic);
  put_u32(out, meta.schema_version);
  put_u32(out, static_cast<std::uint32_t>(
                   std::min<std::size_t>(meta.source.size(), kMaxSourceBytes)));
  put_u64(out, count);
  put_i64(out, meta.clock_base_ns);
  out.append(meta.source, 0,
             std::min<std::size_t>(meta.source.size(), kMaxSourceBytes));
  return out;
}

TraceLoadResult fail_load(std::string message) {
  TraceLoadResult result;
  result.error = std::move(message);
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace

std::vector<double> Trace::delays_ms() const {
  std::vector<double> out;
  out.reserve(delays.size());
  for (Duration d : delays) out.push_back(d.to_millis_double());
  return out;
}

// ---------------------------------------------------------------------------
// Loaders

TraceLoadResult load_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail_load(path + ": cannot open: " + std::strerror(errno));
  }
  char magic[sizeof kMagic] = {};
  const std::size_t got = std::fread(magic, 1, sizeof magic, f);
  std::fclose(f);
  if (got == sizeof magic && std::memcmp(magic, kMagic, sizeof kMagic) == 0) {
    return load_trace_fdt(path);
  }
  return load_trace_csv(path);
}

TraceLoadResult load_trace_fdt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return fail_load(path + ": cannot open: " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  if (bytes.size() < kHeaderBytes) {
    return fail_load(path + ": truncated header (" +
                     std::to_string(bytes.size()) + " bytes, header needs " +
                     std::to_string(kHeaderBytes) + ")");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (std::memcmp(p, kMagic, sizeof kMagic) != 0) {
    return fail_load(path + ": bad magic (not an .fdt trace)");
  }
  auto trace = std::make_shared<Trace>();
  trace->meta.schema_version = get_u32(p + 8);
  const std::uint32_t source_len = get_u32(p + 12);
  const std::uint64_t count = get_u64(p + 16);
  trace->meta.clock_base_ns = get_i64(p + 24);

  if (trace->meta.schema_version == 0 ||
      trace->meta.schema_version > kTraceSchemaVersion) {
    return fail_load(path + ": unsupported schema version " +
                     std::to_string(trace->meta.schema_version) +
                     " (this build reads up to " +
                     std::to_string(kTraceSchemaVersion) + ")");
  }
  if (source_len > kMaxSourceBytes) {
    return fail_load(path + ": source metadata length " +
                     std::to_string(source_len) + " exceeds the 1 MiB cap");
  }
  const std::size_t records_at = kHeaderBytes + source_len;
  if (bytes.size() < records_at) {
    return fail_load(path + ": truncated source metadata (header claims " +
                     std::to_string(source_len) + " bytes)");
  }
  trace->meta.source = bytes.substr(kHeaderBytes, source_len);

  const std::size_t payload = bytes.size() - records_at;
  if (payload != count * kRecordBytes) {
    return fail_load(path + ": truncated records (header claims " +
                     std::to_string(count) + " samples = " +
                     std::to_string(count * kRecordBytes) +
                     " bytes, file has " + std::to_string(payload) + ")");
  }
  if (count == 0) return fail_load(path + ": empty trace (0 samples)");

  trace->send_times.reserve(count);
  trace->delays.reserve(count);
  const unsigned char* rec = p + records_at;
  for (std::uint64_t i = 0; i < count; ++i, rec += kRecordBytes) {
    const std::int64_t send_ns = get_i64(rec);
    const std::int64_t delay_ns = get_i64(rec + 8);
    if (delay_ns < 0) {
      return fail_load(path + ": record " + std::to_string(i) +
                       ": negative delay " + std::to_string(delay_ns) + " ns");
    }
    trace->send_times.push_back(TimePoint::from_nanos(send_ns));
    trace->delays.push_back(Duration::nanos(delay_ns));
  }
  TraceLoadResult result;
  result.trace = std::move(trace);
  return result;
}

TraceLoadResult load_trace_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return fail_load(path + ": cannot open: " + std::strerror(errno));
  }
  auto trace = std::make_shared<Trace>();
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    // One header line is allowed anywhere before the first data row (leading
    // comment blocks may push it off line 1).
    if (!header_seen && trace->empty() && line == "send_time_ns,delay_ns") {
      header_seen = true;
      continue;
    }

    const char* text = line.c_str();
    char* end = nullptr;
    errno = 0;
    const long long send_ns = std::strtoll(text, &end, 10);
    bool parsed = end != text && *end == ',' && errno == 0;
    long long delay_ns = 0;
    if (parsed) {
      const char* second = end + 1;
      errno = 0;
      delay_ns = std::strtoll(second, &end, 10);
      parsed = end != second && *end == '\0' && errno == 0;
    }
    if (!parsed) {
      const std::string snippet =
          line.size() > 64 ? line.substr(0, 64) + "..." : line;
      return fail_load(path + ":" + std::to_string(line_no) +
                       ": cannot parse '" + snippet +
                       "' (want send_time_ns,delay_ns)");
    }
    if (delay_ns < 0) {
      return fail_load(path + ":" + std::to_string(line_no) +
                       ": negative delay " + std::to_string(delay_ns) + " ns");
    }
    trace->send_times.push_back(TimePoint::from_nanos(send_ns));
    trace->delays.push_back(Duration::nanos(delay_ns));
  }
  if (trace->empty()) return fail_load(path + ": empty trace (0 samples)");

  TraceLoadResult result;
  result.trace = std::move(trace);
  return result;
}

// ---------------------------------------------------------------------------
// Writers

bool save_trace_fdt(const Trace& trace, const std::string& path,
                    std::string* error) {
  FDQOS_REQUIRE(trace.send_times.size() == trace.delays.size());
  TraceFdtWriter writer(path, trace.meta);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    writer.append(trace.send_times[i], trace.delays[i]);
  }
  writer.finalize();
  if (!writer.ok() && error != nullptr) *error = writer.error();
  return writer.ok();
}

bool save_trace_csv(const Trace& trace, const std::string& path,
                    std::string* error) {
  FDQOS_REQUIRE(trace.send_times.size() == trace.delays.size());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = path + ": cannot open for writing: " + std::strerror(errno);
    }
    return false;
  }
  bool ok = std::fputs("send_time_ns,delay_ns\n", f) >= 0;
  for (std::size_t i = 0; i < trace.size() && ok; ++i) {
    ok = std::fprintf(f, "%lld,%lld\n",
                      static_cast<long long>(trace.send_times[i].count_nanos()),
                      static_cast<long long>(trace.delays[i].count_nanos())) > 0;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = path + ": write failed";
  return ok;
}

TraceFdtWriter::TraceFdtWriter(const std::string& path, TraceMeta meta) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    fail(path + ": cannot open for writing: " + std::strerror(errno));
    return;
  }
  const std::string header = fdt_header(meta, 0);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    fail(path + ": header write failed");
    return;
  }
  ok_ = true;
}

TraceFdtWriter::~TraceFdtWriter() {
  finalize();
}

void TraceFdtWriter::fail(const std::string& what) {
  ok_ = false;
  if (error_.empty()) error_ = what;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool TraceFdtWriter::append(TimePoint send_time, Duration delay) {
  if (!ok_ || finalized_) return false;
  if (delay < Duration::zero()) {
    fail("negative delay " + std::to_string(delay.count_nanos()) + " ns");
    return false;
  }
  // Stack-encode the record: a 16-byte record overflows libstdc++'s 15-byte
  // SSO, so the old std::string path heap-allocated per sample — visible in
  // the serve daemon's capture path at millions of samples per second.
  unsigned char record[kRecordBytes];
  const auto send_ns = static_cast<std::uint64_t>(send_time.count_nanos());
  const auto delay_ns = static_cast<std::uint64_t>(delay.count_nanos());
  for (int i = 0; i < 8; ++i) {
    record[i] = static_cast<unsigned char>(send_ns >> (8 * i));
    record[8 + i] = static_cast<unsigned char>(delay_ns >> (8 * i));
  }
  if (std::fwrite(record, 1, sizeof record, file_) != sizeof record) {
    fail("record write failed");
    return false;
  }
  ++count_;
  return true;
}

bool TraceFdtWriter::finalize() {
  if (finalized_) return ok_;
  finalized_ = true;
  if (!ok_) return false;
  std::string count_bytes;
  put_u64(count_bytes, count_);
  if (std::fseek(file_, kCountOffset, SEEK_SET) != 0 ||
      std::fwrite(count_bytes.data(), 1, count_bytes.size(), file_) !=
          count_bytes.size()) {
    fail("sample-count patch failed");
    return false;
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    fail("close failed");
    return false;
  }
  file_ = nullptr;
  return true;
}

// ---------------------------------------------------------------------------
// RotatingFdtWriter

RotatingFdtWriter::RotatingFdtWriter(Options opts) : opts_(std::move(opts)) {
  if (opts_.max_samples == 0) opts_.max_samples = 1;
  if (!open_segment()) ok_ = false;
}

RotatingFdtWriter::~RotatingFdtWriter() { finalize(); }

std::string RotatingFdtWriter::segment_path(std::size_t index) const {
  char suffix[24];
  std::snprintf(suffix, sizeof suffix, "-%05zu.fdt", index);
  return opts_.directory + "/" + opts_.prefix + suffix;
}

bool RotatingFdtWriter::open_segment() {
  live_path_ = segment_path(next_index_++);
  writer_ = std::make_unique<TraceFdtWriter>(live_path_, opts_.meta);
  if (!writer_->ok()) {
    if (error_.empty()) error_ = writer_->error();
    writer_.reset();
    return false;
  }
  return true;
}

bool RotatingFdtWriter::close_segment() {
  if (writer_ == nullptr) return true;
  const std::uint64_t samples = writer_->samples_written();
  const bool closed = writer_->finalize();
  if (!closed && error_.empty()) error_ = writer_->error();
  writer_.reset();
  if (samples == 0) {
    // A finalized 0-sample file is one the loader rejects ("empty trace");
    // leaving it behind would make every idle shutdown litter a broken
    // segment next to the good ones.
    std::remove(live_path_.c_str());
  } else if (closed) {
    segments_.push_back(live_path_);
  }
  return closed;
}

bool RotatingFdtWriter::append(TimePoint send_time, Duration delay) {
  if (!ok_ || finalized_ || writer_ == nullptr) return false;
  if (!writer_->append(send_time, delay)) {
    if (error_.empty()) error_ = writer_->error();
    ok_ = false;
    return false;
  }
  ++total_samples_;
  if (writer_->samples_written() >= opts_.max_samples) {
    if (!close_segment() || !open_segment()) ok_ = false;
  }
  return ok_;
}

bool RotatingFdtWriter::finalize() {
  if (finalized_) return ok_;
  finalized_ = true;
  if (!close_segment()) ok_ = false;
  return ok_;
}

// ---------------------------------------------------------------------------
// Recording

void TraceRecorder::record(TimePoint send_time, Duration delay) {
  send_times_.push_back(send_time);
  delays_.push_back(delay);
}

std::vector<double> TraceRecorder::delays_ms() const {
  std::vector<double> out;
  out.reserve(delays_.size());
  for (Duration d : delays_) out.push_back(d.to_millis_double());
  return out;
}

bool TraceRecorder::save(const std::string& path) const {
  Trace trace;
  trace.send_times = send_times_;
  trace.delays = delays_;
  return save_trace_csv(trace, path);
}

TraceRecorder& TraceRecorderHub::shard(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shards_[key];
  if (slot == nullptr) slot = std::make_unique<TraceRecorder>();
  return *slot;
}

TraceRecorder& TraceRecorderHub::fresh_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shards_[next_auto_key_++];
  slot = std::make_unique<TraceRecorder>();
  return *slot;
}

std::size_t TraceRecorderHub::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::size_t TraceRecorderHub::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, rec] : shards_) n += rec->size();
  return n;
}

Trace TraceRecorderHub::merged(TraceMeta meta) const {
  std::lock_guard<std::mutex> lock(mu_);
  Trace out;
  out.meta = std::move(meta);
  std::size_t total = 0;
  for (const auto& [key, rec] : shards_) total += rec->size();
  out.send_times.reserve(total);
  out.delays.reserve(total);
  for (const auto& [key, rec] : shards_) {  // std::map: ascending key order
    out.send_times.insert(out.send_times.end(), rec->send_times().begin(),
                          rec->send_times().end());
    out.delays.insert(out.delays.end(), rec->delays().begin(),
                      rec->delays().end());
  }
  return out;
}

RecordingDelay::RecordingDelay(std::unique_ptr<DelayModel> inner,
                               std::shared_ptr<TraceRecorderHub> hub,
                               std::uint64_t key)
    : inner_(std::move(inner)), hub_(std::move(hub)) {
  FDQOS_REQUIRE(inner_ != nullptr && hub_ != nullptr);
  shard_ = &hub_->shard(key);
  name_ = "recording(" + inner_->name() + ")";
}

RecordingDelay::RecordingDelay(std::unique_ptr<DelayModel> inner,
                               std::shared_ptr<TraceRecorderHub> hub)
    : inner_(std::move(inner)), hub_(std::move(hub)) {
  FDQOS_REQUIRE(inner_ != nullptr && hub_ != nullptr);
  shard_ = &hub_->fresh_shard();
  name_ = "recording(" + inner_->name() + ")";
}

Duration RecordingDelay::sample(Rng& rng, TimePoint send_time) {
  const Duration d = inner_->sample(rng, send_time);
  shard_->record(send_time, d);
  return d;
}

std::unique_ptr<DelayModel> RecordingDelay::make_fresh() const {
  // A fresh clone records into its own fresh shard: clones running on
  // different threads never touch the same vectors.
  return std::make_unique<RecordingDelay>(inner_->make_fresh(), hub_);
}

// ---------------------------------------------------------------------------
// Replay

const char* replay_policy_name(ReplayPolicy policy) {
  switch (policy) {
    case ReplayPolicy::kTruncate: return "truncate";
    case ReplayPolicy::kWrap: return "wrap";
    case ReplayPolicy::kExtend: return "extend";
  }
  return "?";
}

std::optional<ReplayPolicy> parse_replay_policy(const std::string& text) {
  if (text == "truncate") return ReplayPolicy::kTruncate;
  if (text == "wrap") return ReplayPolicy::kWrap;
  if (text == "extend") return ReplayPolicy::kExtend;
  return std::nullopt;
}

TraceTailModel fit_trace_tail(const std::vector<Duration>& delays) {
  TraceTailModel model;
  if (delays.empty()) return model;
  model.floor = *std::min_element(delays.begin(), delays.end());
  model.cap = *std::max_element(delays.begin(), delays.end());

  // Method-of-moments log-normal on the excess over the floor, in ms.
  double mean = 0.0;
  for (Duration d : delays) mean += (d - model.floor).to_millis_double();
  mean /= static_cast<double>(delays.size());
  double var = 0.0;
  for (Duration d : delays) {
    const double x = (d - model.floor).to_millis_double() - mean;
    var += x * x;
  }
  var /= static_cast<double>(delays.size());

  if (mean <= 0.0 || var <= 0.0) return model;  // constant trace: stay flat
  const double sigma_sq = std::log(1.0 + var / (mean * mean));
  model.sigma = std::sqrt(sigma_sq);
  model.mu = std::log(mean) - sigma_sq / 2.0;
  model.degenerate = false;
  return model;
}

Duration TraceTailModel::sample(Rng& rng) const {
  if (degenerate) return floor;
  const Duration d =
      floor + Duration::from_millis_double(rng.lognormal(mu, sigma));
  return std::min(d, cap);
}

TraceReplayDelay::TraceReplayDelay(std::vector<Duration> delays,
                                   ReplayPolicy policy)
    : TraceReplayDelay(
          std::make_shared<const std::vector<Duration>>(std::move(delays)),
          policy) {}

TraceReplayDelay::TraceReplayDelay(
    std::shared_ptr<const std::vector<Duration>> delays, ReplayPolicy policy)
    : delays_(std::move(delays)), policy_(policy) {
  FDQOS_REQUIRE(delays_ != nullptr && !delays_->empty());
  if (policy_ == ReplayPolicy::kExtend) tail_ = fit_trace_tail(*delays_);
  char buf[64];
  std::snprintf(buf, sizeof buf, "trace(%zu,%s)", delays_->size(),
                replay_policy_name(policy_));
  name_ = buf;
  min_delay_ = *std::min_element(delays_->begin(), delays_->end());
}

std::unique_ptr<TraceReplayDelay> TraceReplayDelay::load(
    const std::string& path, ReplayPolicy policy) {
  auto delays = load_trace_data(path);
  if (delays == nullptr) return nullptr;
  return std::make_unique<TraceReplayDelay>(std::move(delays), policy);
}

std::shared_ptr<const std::vector<Duration>> TraceReplayDelay::load_trace_data(
    const std::string& path) {
  TraceLoadResult loaded = load_trace(path);
  if (!loaded.ok()) {
    FDQOS_LOG_WARN("trace load failed: %s", loaded.error.c_str());
    return nullptr;
  }
  // Aliasing share: the vector lives inside (and as long as) the Trace.
  return std::shared_ptr<const std::vector<Duration>>(loaded.trace,
                                                      &loaded.trace->delays);
}

Duration TraceReplayDelay::min_delay() const {
  // kExtend resamples the tail from a fitted model whose support is not
  // bounded below by the trace minimum; promise nothing there.
  return policy_ == ReplayPolicy::kExtend ? Duration::zero() : min_delay_;
}

Duration TraceReplayDelay::sample(Rng& rng, TimePoint) {
  if (next_ >= delays_->size()) {
    switch (policy_) {
      case ReplayPolicy::kTruncate:
        // A truncate-policy experiment is supposed to end with the trace
        // (run_qos_experiment clamps its cycle count); repeating the last
        // delay keeps a misconfigured caller limping along visibly.
        ++overruns_;
        if (!warned_end_) {
          FDQOS_LOG_ERROR(
              "trace replay overran %zu samples under policy=truncate; "
              "repeating the final delay (clamp the experiment to the "
              "trace length, or replay with wrap/extend)",
              delays_->size());
          warned_end_ = true;
        }
        return delays_->back();
      case ReplayPolicy::kWrap:
        if (!warned_end_) {
          FDQOS_LOG_WARN("trace replay wrapped after %zu samples",
                         delays_->size());
          warned_end_ = true;
        }
        next_ = 0;
        break;
      case ReplayPolicy::kExtend:
        ++extended_;
        return tail_.sample(rng);
    }
  }
  return (*delays_)[next_++];
}

std::unique_ptr<DelayModel> TraceReplayDelay::make_fresh() const {
  return std::make_unique<TraceReplayDelay>(delays_, policy_);
}

}  // namespace fdqos::wan
