#include "wan/loss_model.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace fdqos::wan {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  FDQOS_REQUIRE(p >= 0.0 && p <= 1.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "bernoulli(%.4f)", p_);
  name_ = buf;
}

bool BernoulliLoss::drop(Rng& rng, TimePoint) { return rng.bernoulli(p_); }

std::unique_ptr<LossModel> BernoulliLoss::make_fresh() const {
  return std::make_unique<BernoulliLoss>(p_);
}

GilbertElliottLoss::GilbertElliottLoss(Params params) : params_(params) {
  FDQOS_REQUIRE(params.p_good_to_bad >= 0.0 && params.p_good_to_bad <= 1.0);
  FDQOS_REQUIRE(params.p_bad_to_good >= 0.0 && params.p_bad_to_good <= 1.0);
  FDQOS_REQUIRE(params.loss_good >= 0.0 && params.loss_good <= 1.0);
  FDQOS_REQUIRE(params.loss_bad >= 0.0 && params.loss_bad <= 1.0);
  char buf[96];
  std::snprintf(buf, sizeof buf, "gilbert-elliott(gb=%.4g,bg=%.4g,lg=%.4g,lb=%.4g)",
                params.p_good_to_bad, params.p_bad_to_good, params.loss_good,
                params.loss_bad);
  name_ = buf;
}

bool GilbertElliottLoss::drop(Rng& rng, TimePoint) {
  // Evolve the chain one step per message, then roll loss for the new state.
  if (bad_) {
    if (rng.bernoulli(params_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng.bernoulli(params_.p_good_to_bad)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliottLoss::stationary_loss() const {
  const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
  if (denom == 0.0) return bad_ ? params_.loss_bad : params_.loss_good;
  const double pi_bad = params_.p_good_to_bad / denom;
  return pi_bad * params_.loss_bad + (1.0 - pi_bad) * params_.loss_good;
}

std::unique_ptr<LossModel> GilbertElliottLoss::make_fresh() const {
  return std::make_unique<GilbertElliottLoss>(params_);
}

}  // namespace fdqos::wan
