// Transport abstraction — the Neko property.
//
// Layer stacks (runtime/) are written against this interface only, so the
// same failure-detector code runs over the simulated WAN (SimTransport) and
// over real UDP sockets (UdpTransport) without modification, exactly as
// Neko applications run on simulated or real networks from one codebase.
#pragma once

#include <functional>

#include "net/message.hpp"

namespace fdqos::net {

class Transport {
 public:
  using DeliverFn = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  // Register the receive callback for `node`. One receiver per node.
  virtual void bind(NodeId node, DeliverFn deliver) = 0;

  // Fire-and-forget send; the transport may drop, delay, and reorder.
  virtual void send(Message msg) = 0;

  // Current time on the transport's timeline (virtual for the simulator,
  // wall-clock for UDP). Layers use this instead of any global clock.
  virtual TimePoint now() const = 0;
};

}  // namespace fdqos::net
