#include "net/codec.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace fdqos::net {
namespace {
constexpr std::uint32_t kMagic = 0x31514446;       // "FDQ1" little-endian
constexpr std::uint32_t kBatchMagic = 0x42514446;  // "FDQB" little-endian

// Unchecked little-endian loads (callers validate the byte range first).
std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void push_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void push_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
}  // namespace

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!take(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!take(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!take(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> ByteReader::f64() {
  auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof v);
  return v;
}

std::optional<std::vector<std::uint8_t>> ByteReader::bytes() {
  auto len = u32();
  if (!len || !take(*len)) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(msg.from));
  w.u32(static_cast<std::uint32_t>(msg.to));
  w.u32(static_cast<std::uint32_t>(msg.type));
  w.i64(msg.seq);
  w.i64(msg.send_time.count_nanos());
  w.bytes(msg.payload);
  return w.take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;
  Message msg;
  const auto from = r.u32();
  const auto to = r.u32();
  const auto type = r.u32();
  const auto seq = r.i64();
  const auto send_ns = r.i64();
  auto payload = r.bytes();
  if (!from || !to || !type || !seq || !send_ns || !payload || !r.exhausted()) {
    return std::nullopt;
  }
  msg.from = static_cast<NodeId>(*from);
  msg.to = static_cast<NodeId>(*to);
  msg.type = static_cast<MessageType>(*type);
  msg.seq = *seq;
  msg.send_time = TimePoint::from_nanos(*send_ns);
  msg.payload = std::move(*payload);
  return msg;
}

// ---------------------------------------------------------------------------
// Heartbeat fast paths

bool decode_heartbeat_frame(std::span<const std::uint8_t> wire,
                            HeartbeatFrame& out) {
  // Fixed prefix: magic(4) from(4) to(4) type(4) seq(8) send_time(8)
  // payload_len(4) — 36 bytes — then exactly payload_len payload bytes.
  constexpr std::size_t kFixed = 36;
  if (wire.size() < kFixed) return false;
  const std::uint8_t* p = wire.data();
  if (load_u32(p) != kMagic) return false;
  if (static_cast<MessageType>(load_u32(p + 12)) != MessageType::kHeartbeat) {
    return false;
  }
  const std::uint32_t payload_len = load_u32(p + 32);
  if (wire.size() - kFixed != payload_len) return false;
  out.from = static_cast<NodeId>(load_u32(p + 4));
  out.to = static_cast<NodeId>(load_u32(p + 8));
  out.seq = static_cast<std::int64_t>(load_u64(p + 16));
  out.send_time =
      TimePoint::from_nanos(static_cast<std::int64_t>(load_u64(p + 24)));
  return true;
}

void begin_packed_batch(std::vector<std::uint8_t>& buf) {
  buf.clear();
  push_u32(buf, kBatchMagic);
  push_u32(buf, 0);  // record count, patched by finish_packed_batch
}

void append_packed_heartbeat(std::vector<std::uint8_t>& buf, NodeId from,
                             std::int64_t seq, TimePoint send_time) {
  push_u32(buf, static_cast<std::uint32_t>(from));
  push_u64(buf, static_cast<std::uint64_t>(seq));
  push_u64(buf, static_cast<std::uint64_t>(send_time.count_nanos()));
}

std::uint32_t finish_packed_batch(std::vector<std::uint8_t>& buf) {
  FDQOS_REQUIRE(buf.size() >= kPackedBatchHeaderBytes);
  FDQOS_REQUIRE((buf.size() - kPackedBatchHeaderBytes) % kPackedRecordBytes ==
                0);
  const auto count = static_cast<std::uint32_t>(
      (buf.size() - kPackedBatchHeaderBytes) / kPackedRecordBytes);
  store_u32(buf.data() + 4, count);
  return count;
}

void PackedBatchView::get(std::size_t i, HeartbeatFrame& out) const {
  FDQOS_REQUIRE(i < count_);
  const std::uint8_t* p = records_.data() + i * kPackedRecordBytes;
  out.from = static_cast<NodeId>(load_u32(p));
  out.to = 0;
  out.seq = static_cast<std::int64_t>(load_u64(p + 4));
  out.send_time =
      TimePoint::from_nanos(static_cast<std::int64_t>(load_u64(p + 12)));
}

bool decode_packed_batch(std::span<const std::uint8_t> wire,
                         PackedBatchView& out) {
  if (wire.size() < kPackedBatchHeaderBytes) return false;
  if (load_u32(wire.data()) != kBatchMagic) return false;
  const std::uint32_t count = load_u32(wire.data() + 4);
  const std::size_t body = wire.size() - kPackedBatchHeaderBytes;
  if (body % kPackedRecordBytes != 0) return false;
  if (body / kPackedRecordBytes != count) return false;
  out.records_ = wire.subspan(kPackedBatchHeaderBytes);
  out.count_ = count;
  return true;
}

}  // namespace fdqos::net
