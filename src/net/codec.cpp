#include "net/codec.hpp"

#include <cstring>

namespace fdqos::net {
namespace {
constexpr std::uint32_t kMagic = 0x31514446;  // "FDQ1" little-endian
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!take(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!take(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!take(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> ByteReader::f64() {
  auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof v);
  return v;
}

std::optional<std::vector<std::uint8_t>> ByteReader::bytes() {
  auto len = u32();
  if (!len || !take(*len)) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(msg.from));
  w.u32(static_cast<std::uint32_t>(msg.to));
  w.u32(static_cast<std::uint32_t>(msg.type));
  w.i64(msg.seq);
  w.i64(msg.send_time.count_nanos());
  w.bytes(msg.payload);
  return w.take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;
  Message msg;
  const auto from = r.u32();
  const auto to = r.u32();
  const auto type = r.u32();
  const auto seq = r.i64();
  const auto send_ns = r.i64();
  auto payload = r.bytes();
  if (!from || !to || !type || !seq || !send_ns || !payload || !r.exhausted()) {
    return std::nullopt;
  }
  msg.from = static_cast<NodeId>(*from);
  msg.to = static_cast<NodeId>(*to);
  msg.type = static_cast<MessageType>(*type);
  msg.seq = *seq;
  msg.send_time = TimePoint::from_nanos(*send_ns);
  msg.payload = std::move(*payload);
  return msg;
}

}  // namespace fdqos::net
