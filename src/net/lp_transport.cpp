#include "net/lp_transport.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::net {

LpShardTransport::LpShardTransport(sim::ParallelSimulator& psim,
                                   std::size_t lp)
    : psim_(psim), lp_(lp) {}

void LpShardTransport::bind(NodeId node, DeliverFn deliver) {
  receivers_[node] = std::move(deliver);
}

void LpShardTransport::send(Message) {
  FDQOS_REQUIRE(false && "shard stacks are receive-only");
}

TimePoint LpShardTransport::now() const { return psim_.lp(lp_).now(); }

void LpShardTransport::deliver(const Message& msg) {
  auto it = receivers_.find(msg.to);
  if (it == receivers_.end() || !it->second) {
    FDQOS_LOG_DEBUG("dropping message to unbound shard node %d", msg.to);
    return;
  }
  it->second(msg);
}

LpSenderTransport::LpSenderTransport(sim::ParallelSimulator& psim,
                                     std::size_t src_lp, Rng rng)
    : psim_(psim), src_lp_(src_lp), rng_(rng) {}

void LpSenderTransport::set_link(NodeId from, NodeId to, LinkConfig config) {
  link_for(from, to).config = std::move(config);
}

void LpSenderTransport::set_link_enabled(NodeId from, NodeId to,
                                         bool enabled) {
  link_for(from, to).enabled = enabled;
}

void LpSenderTransport::add_shard(NodeId node, LpShardTransport& shard) {
  shards_[node].push_back(&shard);
}

Duration LpSenderTransport::link_lookahead(NodeId from, NodeId to) {
  const Link& link = link_for(from, to);
  return link.config.delay ? link.config.delay->min_delay()
                           : Duration::zero();
}

void LpSenderTransport::bind(NodeId node, DeliverFn deliver) {
  local_receivers_[node] = std::move(deliver);
}

TimePoint LpSenderTransport::now() const {
  return psim_.lp(src_lp_).now();
}

LpSenderTransport::Link& LpSenderTransport::link_for(NodeId from, NodeId to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Identical substream derivation to SimTransport::link_for, so the two
    // engines draw the same per-link sequences from the same seed. (Link
    // holds an atomic, so it is built in place, not moved in.)
    it = links_.try_emplace(key).first;
    char name[48];
    std::snprintf(name, sizeof name, "link/%d/%d", from, to);
    it->second.rng = rng_.fork(name);
  }
  return it->second;
}

void LpSenderTransport::send(Message msg) {
  Link& link = link_for(msg.from, msg.to);
  ++link.sent;

  if (!link.enabled) {
    ++link.dropped;
    ++link.partition_dropped;
    return;
  }
  const TimePoint send_now = now();
  if (link.config.loss && link.config.loss->drop(link.rng, send_now)) {
    ++link.dropped;
    return;
  }

  const Duration delay =
      link.config.delay ? link.config.delay->sample(link.rng, send_now)
                        : Duration::zero();
  FDQOS_ASSERT(delay >= Duration::zero());
  const TimePoint arrival = send_now + delay;

  auto shard_it = shards_.find(msg.to);
  if (shard_it != shards_.end()) {
    const auto& shard_list = shard_it->second;
    for (std::size_t s = 0; s < shard_list.size(); ++s) {
      LpShardTransport* shard = shard_list[s];
      Link* link_ptr = &link;
      const bool primary = s == 0;
      auto deliver = [shard, link_ptr, primary, msg] {
        if (primary) {
          link_ptr->delivered.fetch_add(1, std::memory_order_relaxed);
        }
        shard->deliver(msg);
      };
      if (shard->lp() == src_lp_) {
        // Same-LP shard (the lps=1 layout): a mailbox hop would only be
        // drained at the next round, after this LP may have executed past
        // `arrival` — schedule directly into the local queue instead.
        psim_.lp(src_lp_).schedule_at(arrival, std::move(deliver));
      } else {
        psim_.post(src_lp_, shard->lp(), arrival, std::move(deliver));
      }
    }
    return;
  }

  // Locally-bound destination (same LP as the sender): plain local event.
  auto local_it = local_receivers_.find(msg.to);
  if (local_it == local_receivers_.end() || !local_it->second) {
    FDQOS_LOG_DEBUG("dropping message to unbound node %d", msg.to);
    return;
  }
  DeliverFn* deliver = &local_it->second;
  Link* link_ptr = &link;
  psim_.lp(src_lp_).schedule_at(arrival, [deliver, link_ptr, msg] {
    link_ptr->delivered.fetch_add(1, std::memory_order_relaxed);
    (*deliver)(msg);
  });
}

LpSenderTransport::LinkStats LpSenderTransport::link_stats(NodeId from,
                                                           NodeId to) const {
  LinkStats stats;
  auto it = links_.find(std::make_pair(from, to));
  if (it == links_.end()) return stats;
  const Link& link = it->second;
  stats.sent = link.sent;
  stats.dropped = link.dropped;
  stats.partition_dropped = link.partition_dropped;
  stats.delivered = link.delivered.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fdqos::net
