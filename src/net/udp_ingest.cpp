#include "net/udp_ingest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::net {

UdpIngestSocket::UdpIngestSocket(const Options& opts)
    : batch_(opts.batch), slot_bytes_(opts.datagram_bytes) {
  FDQOS_REQUIRE(batch_ > 0);
  FDQOS_REQUIRE(slot_bytes_ > 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    FDQOS_LOG_ERROR(
        "ingest: bind host '%s' is not an IPv4 literal (hostnames are not "
        "resolved; see net/udp_ingest.hpp)",
        opts.host.c_str());
    return;
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    FDQOS_LOG_ERROR("ingest: socket() failed: %s", std::strerror(errno));
    return;
  }
  if (opts.rcvbuf_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max; a burst that overflows
    // the default 212KB buffer silently drops datagrams, which would show
    // up as mysterious loss in the bench rather than an error anywhere.
    const int want = opts.rcvbuf_bytes;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &want, sizeof want);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    FDQOS_LOG_ERROR("ingest: bind(%s:%u) failed: %s", opts.host.c_str(),
                    opts.port, std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }

  slab_.resize(batch_ * slot_bytes_);
  lengths_.assign(batch_, 0);
#ifdef __linux__
  use_recvmmsg_ = !opts.force_single_recv;
  if (use_recvmmsg_) {
    // One mmsghdr + one iovec per slot, wired up once; recvmmsg only
    // writes msg_len / msg_flags back, so the wiring survives reuse.
    headers_.resize(batch_ * (sizeof(mmsghdr) + sizeof(iovec)));
    auto* msgs = reinterpret_cast<mmsghdr*>(headers_.data());
    auto* iovs =
        reinterpret_cast<iovec*>(headers_.data() + batch_ * sizeof(mmsghdr));
    std::memset(headers_.data(), 0, headers_.size());
    for (std::size_t i = 0; i < batch_; ++i) {
      iovs[i].iov_base = slab_.data() + i * slot_bytes_;
      iovs[i].iov_len = slot_bytes_;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
  }
#else
  (void)opts.force_single_recv;
#endif
}

UdpIngestSocket::~UdpIngestSocket() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpIngestSocket::recv_batch() {
  if (fd_ < 0) return 0;
#ifdef __linux__
  if (use_recvmmsg_) {
    auto* msgs = reinterpret_cast<mmsghdr*>(headers_.data());
    int rc;
    do {
      rc = ::recvmmsg(fd_, msgs, static_cast<unsigned>(batch_), MSG_DONTWAIT,
                      nullptr);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        FDQOS_LOG_DEBUG("ingest: recvmmsg failed: %s", std::strerror(errno));
      }
      return 0;
    }
    for (int i = 0; i < rc; ++i) lengths_[static_cast<std::size_t>(i)] = msgs[i].msg_len;
    return static_cast<std::size_t>(rc);
  }
#endif
  return recv_batch_single();
}

std::size_t UdpIngestSocket::recv_batch_single() {
  std::size_t n = 0;
  while (n < batch_) {
    const ssize_t rc =
        ::recv(fd_, slab_.data() + n * slot_bytes_, slot_bytes_, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        FDQOS_LOG_DEBUG("ingest: recv failed: %s", std::strerror(errno));
      }
      break;
    }
    lengths_[n] = static_cast<std::size_t>(rc);
    ++n;
  }
  return n;
}

std::span<const std::uint8_t> UdpIngestSocket::datagram(std::size_t i) const {
  FDQOS_REQUIRE(i < batch_);
  return {slab_.data() + i * slot_bytes_, lengths_[i]};
}

}  // namespace fdqos::net
