// Real UDP transport + real-time driver.
//
// Runs the same layer stacks used in simulation over actual UDP sockets:
// the RealTimeDriver executes a Simulator's event queue against the wall
// clock (virtual time == elapsed real time) and pumps received datagrams
// into the bound receivers. This is the deployment path — e.g. monitoring a
// live process across a real WAN — and the mechanism for recording real
// delay traces to replay through the experiment harness.
#pragma once

#include <map>
#include <string>

#include "net/codec.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace fdqos::net {

struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpTransport final : public Transport {
 public:
  // `self` must appear in `peers`; its endpoint's port is bound locally.
  // Time is read from `simulator` (driven in real time by RealTimeDriver).
  UdpTransport(sim::Simulator& simulator, NodeId self,
               std::map<NodeId, UdpEndpoint> peers);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // True when the socket was created and bound successfully.
  bool ok() const { return fd_ >= 0; }
  // Port actually bound (resolves port 0 to the kernel-assigned one).
  std::uint16_t local_port() const { return local_port_; }

  void bind(NodeId node, DeliverFn deliver) override;
  void send(Message msg) override;
  TimePoint now() const override { return simulator_.now(); }

  int fd() const { return fd_; }
  // Read every pending datagram and deliver decoded messages. Returns the
  // number of messages delivered.
  std::size_t drain();

  std::uint64_t sent_count() const { return sent_; }
  std::uint64_t received_count() const { return received_; }
  std::uint64_t decode_failures() const { return decode_failures_; }

 private:
  sim::Simulator& simulator_;
  NodeId self_;
  std::map<NodeId, UdpEndpoint> peers_;
  DeliverFn deliver_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t decode_failures_ = 0;
};

// Milliseconds to hand ::poll for a wait of this length: non-negative,
// rounded up, and clamped so that a multi-week virtual wait cannot
// overflow the int timeout into a negative (= block forever) value. The
// cap also bounds how long the driver sleeps before rechecking stop().
int clamp_poll_timeout_ms(Duration wait);

// Executes a Simulator in real time: events fire when the wall clock
// reaches their virtual timestamp, and UDP datagrams are delivered as they
// arrive. Virtual time starts at the simulator's current now().
class RealTimeDriver {
 public:
  RealTimeDriver(sim::Simulator& simulator, UdpTransport& transport);

  // Runs until virtual time reaches `deadline` (or stop() is called from a
  // callback). Returns the number of simulator events executed.
  std::uint64_t run_for(Duration duration);

  void stop() { stopped_ = true; }

 private:
  sim::Simulator& simulator_;
  UdpTransport& transport_;
  bool stopped_ = false;
};

}  // namespace fdqos::net
