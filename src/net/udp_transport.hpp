// Real UDP transport + real-time driver.
//
// Runs the same layer stacks used in simulation over actual UDP sockets:
// the RealTimeDriver executes a Simulator's event queue against the wall
// clock (virtual time == elapsed real time) and pumps received datagrams
// into the bound receivers. This is the deployment path — e.g. monitoring a
// live process across a real WAN — and the mechanism for recording real
// delay traces to replay through the experiment harness. The long-running
// production ingest mode built on top of it is `fdqos serve`
// (serve/daemon.hpp, docs/serve.md).
//
// Addressing contract: every UdpEndpoint::host must be an IPv4 literal
// ("127.0.0.1", "10.0.0.7", ...). Hostnames are NOT resolved — resolution
// would block the real-time loop and make send() latency depend on DNS.
// The constructor validates every peer up front and fails construction
// (ok() == false) with an error naming the offending endpoint, instead of
// the old behaviour of silently dropping every send to that peer.
#pragma once

#include <atomic>
#include <map>
#include <string>

#include <netinet/in.h>

#include "net/codec.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace fdqos::net {

struct UdpEndpoint {
  std::string host = "127.0.0.1";  // IPv4 literal only (see header comment)
  std::uint16_t port = 0;
};

// Test seam: syscall indirection so unit tests can interpose failing
// recv/sendto (EINTR and short-write injection) without arranging a real
// kernel signal mid-call. Null members mean "the real syscall".
struct UdpSyscalls {
  ssize_t (*recv)(int fd, void* buf, std::size_t len, int flags) = nullptr;
  ssize_t (*sendto)(int fd, const void* buf, std::size_t len, int flags,
                    const sockaddr* addr, socklen_t addrlen) = nullptr;
};
// Installs the hooks and returns the previous set (tests restore on exit).
UdpSyscalls set_udp_syscalls_for_test(UdpSyscalls hooks);

class UdpTransport final : public Transport {
 public:
  // `self` must appear in `peers`; its endpoint's port is bound locally.
  // Every peer's host must be an IPv4 literal; any unparsable endpoint
  // fails construction (ok() == false) with a log line naming it.
  // Time is read from `simulator` (driven in real time by RealTimeDriver).
  UdpTransport(sim::Simulator& simulator, NodeId self,
               std::map<NodeId, UdpEndpoint> peers);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // True when every peer endpoint parsed and the socket was created and
  // bound successfully.
  bool ok() const { return fd_ >= 0; }
  // Port actually bound (resolves port 0 to the kernel-assigned one).
  std::uint16_t local_port() const { return local_port_; }

  void bind(NodeId node, DeliverFn deliver) override;
  void send(Message msg) override;
  TimePoint now() const override { return simulator_.now(); }

  int fd() const { return fd_; }
  // Read every pending datagram and deliver decoded messages. Returns the
  // number of messages delivered. EINTR is retried, never treated as
  // end-of-queue — a signal must not abandon datagrams until the next
  // poll tick.
  std::size_t drain();

  // sent_count() counts only full-length sendto() completions; a failed or
  // short send is a send_failure (UDP stays fire-and-forget — the message
  // is treated as lost — but the loss is now visible to callers and obs).
  std::uint64_t sent_count() const { return sent_; }
  std::uint64_t send_failures() const { return send_failures_; }
  std::uint64_t received_count() const { return received_; }
  std::uint64_t decode_failures() const { return decode_failures_; }

 private:
  sim::Simulator& simulator_;
  NodeId self_;
  std::map<NodeId, UdpEndpoint> peers_;
  // Destination addresses pre-parsed at construction (the fail-fast IPv4
  // validation doubles as a per-send inet_pton saved on the hot path).
  std::map<NodeId, sockaddr_in> addrs_;
  DeliverFn deliver_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t decode_failures_ = 0;
};

// Milliseconds to hand ::poll for a wait of this length: non-negative,
// rounded up, and clamped so that a multi-week virtual wait cannot
// overflow the int timeout into a negative (= block forever) value. The
// cap also bounds how long the driver sleeps before rechecking stop().
int clamp_poll_timeout_ms(Duration wait);

// Executes a Simulator in real time: events fire when the wall clock
// reaches their virtual timestamp, and UDP datagrams are delivered as they
// arrive. Virtual time starts at the simulator's current now().
class RealTimeDriver {
 public:
  RealTimeDriver(sim::Simulator& simulator, UdpTransport& transport);

  // Runs until virtual time reaches `deadline` (or stop() is called from a
  // callback or another thread). Returns the number of simulator events
  // executed.
  std::uint64_t run_for(Duration duration);

  // Safe from callbacks, other threads and signal handlers: one relaxed
  // atomic store (std::atomic<bool> is lock-free on every supported
  // target), observed within one loop iteration / poll timeout.
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

 private:
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  sim::Simulator& simulator_;
  UdpTransport& transport_;
  std::atomic<bool> stopped_{false};
};

}  // namespace fdqos::net
