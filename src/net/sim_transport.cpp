#include "net/sim_transport.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fdqos::net {

SimTransport::SimTransport(sim::Simulator& simulator, Rng rng)
    : simulator_(simulator), rng_(rng) {}

void SimTransport::set_link(NodeId from, NodeId to, LinkConfig config) {
  Link& link = link_for(from, to);
  link.config = std::move(config);
}

SimTransport::Link& SimTransport::link_for(NodeId from, NodeId to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    Link link;
    char name[48];
    std::snprintf(name, sizeof name, "link/%d/%d", from, to);
    link.rng = rng_.fork(name);
    it = links_.emplace(key, std::move(link)).first;
  }
  return it->second;
}

void SimTransport::bind(NodeId node, DeliverFn deliver) {
  receivers_[node] = std::move(deliver);
}

void SimTransport::set_link_enabled(NodeId from, NodeId to, bool enabled) {
  link_for(from, to).enabled = enabled;
}

void SimTransport::set_partitioned(NodeId a, NodeId b, bool partitioned) {
  set_link_enabled(a, b, !partitioned);
  set_link_enabled(b, a, !partitioned);
}

void SimTransport::send(Message msg) {
  Link& link = link_for(msg.from, msg.to);
  ++link.stats.sent;

  if (!link.enabled) {
    ++link.stats.dropped;
    ++link.stats.partition_dropped;
    return;
  }
  if (link.config.loss && link.config.loss->drop(link.rng, simulator_.now())) {
    ++link.stats.dropped;
    return;
  }

  const Duration delay =
      link.config.delay ? link.config.delay->sample(link.rng, simulator_.now())
                        : Duration::zero();
  FDQOS_ASSERT(delay >= Duration::zero());

  const NodeId to = msg.to;
  Link* link_ptr = &link;
  simulator_.schedule_after(delay, [this, msg = std::move(msg), to, link_ptr] {
    auto it = receivers_.find(to);
    if (it == receivers_.end() || !it->second) {
      FDQOS_LOG_DEBUG("dropping message to unbound node %d", to);
      return;
    }
    ++link_ptr->stats.delivered;
    it->second(msg);
  });
}

const SimTransport::LinkStats& SimTransport::link_stats(NodeId from,
                                                        NodeId to) const {
  static const LinkStats kEmpty{};
  auto it = links_.find(std::make_pair(from, to));
  return it == links_.end() ? kEmpty : it->second.stats;
}

}  // namespace fdqos::net
