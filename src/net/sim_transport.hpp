// Simulated fair-lossy network.
//
// Each directed link owns a delay model, a loss model, and a private RNG
// substream. A sent message is either dropped (fair-lossy) or scheduled for
// delivery after a sampled delay; independent per-message delays reorder
// messages naturally, exactly the behaviour the paper's obs list handles
// via its sq() mapping. Messages are never duplicated or corrupted.
#pragma once

#include <map>
#include <memory>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "wan/delay_model.hpp"
#include "wan/loss_model.hpp"

namespace fdqos::net {

class SimTransport final : public Transport {
 public:
  struct LinkConfig {
    std::unique_ptr<wan::DelayModel> delay;
    std::unique_ptr<wan::LossModel> loss;  // nullptr = lossless
  };

  struct LinkStats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;    // all drops: loss model + disabled link
    std::uint64_t delivered = 0;
    // Subset of `dropped` eaten while the link was disabled — separates
    // injected partitions from stochastic loss in experiment accounting.
    std::uint64_t partition_dropped = 0;
  };

  SimTransport(sim::Simulator& simulator, Rng rng);

  // Configure the directed link from -> to. Unconfigured links deliver
  // instantly and losslessly (useful in unit tests).
  void set_link(NodeId from, NodeId to, LinkConfig config);

  // Partition injection: while disabled, the directed link drops every
  // message (counted in stats). A partition is indistinguishable from a
  // remote crash at the failure-detector — the reason detectors of this
  // kind are inherently *unreliable* (Chandra–Toueg).
  void set_link_enabled(NodeId from, NodeId to, bool enabled);
  // Symmetric convenience: cuts/restores both directions between a and b.
  void set_partitioned(NodeId a, NodeId b, bool partitioned);

  void bind(NodeId node, DeliverFn deliver) override;
  void send(Message msg) override;
  TimePoint now() const override { return simulator_.now(); }

  const LinkStats& link_stats(NodeId from, NodeId to) const;

 private:
  struct Link {
    LinkConfig config;
    Rng rng{0};
    LinkStats stats;
    bool enabled = true;
  };
  Link& link_for(NodeId from, NodeId to);

  sim::Simulator& simulator_;
  Rng rng_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  std::map<NodeId, DeliverFn> receivers_;
};

}  // namespace fdqos::net
