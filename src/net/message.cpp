#include "net/message.hpp"

#include <cstdio>

namespace fdqos::net {

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kUser: return "user";
  }
  return "unknown";
}

std::string Message::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s #%lld %d->%d sent@%.6fs (%zuB)",
                message_type_name(type), static_cast<long long>(seq), from, to,
                send_time.to_seconds_double(), payload.size());
  return buf;
}

}  // namespace fdqos::net
