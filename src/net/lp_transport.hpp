// Transports for the LP-partitioned (parallel) QoS experiment.
//
// The sequential engine runs the whole sender+receiver stack on one
// Simulator through SimTransport. The parallel engine splits it: the sender
// stack (heartbeater, crash layer, fault wrappers) lives on one LP, and the
// receiver stack (multiplexer + a shard of the detector suite) is replicated
// across one or more receiver LPs. LpSenderTransport is the sender half: it
// draws exactly the RNG sequence SimTransport would (same "link/from/to"
// fork names, loss-then-delay order, one draw pair per send), then posts the
// surviving message to every receiver shard's LP at now() + delay via
// ParallelSimulator::post — the cross-LP channel whose lookahead is the
// delay model's min_delay(). LpShardTransport is the receive-only facade a
// shard's ProcessNode binds against.
//
// Determinism: LpSenderTransport runs entirely inside the sender LP's
// window, so its draw sequence is untouched by the partition; each shard
// processes an identical heartbeat stream; per-lane detector decisions
// depend only on that stream. The primary (first-registered) shard counts
// `delivered`, matching the sequential engine's single receiver.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "sim/parallel_simulator.hpp"

namespace fdqos::net {

class LpSenderTransport;

// Receive-only transport facade for one receiver shard LP. now() follows
// the shard LP's clock; send() aborts (shard stacks never emit).
class LpShardTransport final : public Transport {
 public:
  LpShardTransport(sim::ParallelSimulator& psim, std::size_t lp);

  void bind(NodeId node, DeliverFn deliver) override;
  void send(Message msg) override;
  TimePoint now() const override;

  std::size_t lp() const { return lp_; }

 private:
  friend class LpSenderTransport;
  void deliver(const Message& msg);

  sim::ParallelSimulator& psim_;
  std::size_t lp_;
  std::map<NodeId, DeliverFn> receivers_;
};

class LpSenderTransport final : public Transport {
 public:
  // Reuses SimTransport's link vocabulary so experiment wiring is shared.
  using LinkConfig = SimTransport::LinkConfig;
  using LinkStats = SimTransport::LinkStats;

  // `src_lp` is the LP the whole sender stack executes on; `rng` is the
  // same "net" fork SimTransport would receive.
  LpSenderTransport(sim::ParallelSimulator& psim, std::size_t src_lp,
                    Rng rng);

  void set_link(NodeId from, NodeId to, LinkConfig config);
  void set_link_enabled(NodeId from, NodeId to, bool enabled);

  // Route messages addressed to `node` to this shard (fan-out: every shard
  // of `node` gets a copy). The first shard registered for a node is its
  // *primary* and owns the delivered count.
  void add_shard(NodeId node, LpShardTransport& shard);

  // Minimum delay the link from→to can ever apply — the lookahead of the
  // src_lp→shard channels. Duration::zero() for unconfigured links (which
  // deliver instantly).
  Duration link_lookahead(NodeId from, NodeId to);

  void bind(NodeId node, DeliverFn deliver) override;
  void send(Message msg) override;
  TimePoint now() const override;

  // Snapshot (by value: `delivered` is updated from shard LP threads).
  LinkStats link_stats(NodeId from, NodeId to) const;

 private:
  struct Link {
    LinkConfig config;
    Rng rng{0};
    bool enabled = true;
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t partition_dropped = 0;
    // Incremented by the primary shard's delivery events (other threads).
    std::atomic<std::uint64_t> delivered{0};
  };
  Link& link_for(NodeId from, NodeId to);

  sim::ParallelSimulator& psim_;
  std::size_t src_lp_;
  Rng rng_;
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  std::map<NodeId, DeliverFn> local_receivers_;
  std::map<NodeId, std::vector<LpShardTransport*>> shards_;
};

}  // namespace fdqos::net
