#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/instruments.hpp"

namespace fdqos::net {
namespace {

UdpSyscalls g_syscalls;  // test hooks; null members = real syscalls

ssize_t sys_recv(int fd, void* buf, std::size_t len, int flags) {
  return g_syscalls.recv != nullptr ? g_syscalls.recv(fd, buf, len, flags)
                                    : ::recv(fd, buf, len, flags);
}

ssize_t sys_sendto(int fd, const void* buf, std::size_t len, int flags,
                   const sockaddr* addr, socklen_t addrlen) {
  return g_syscalls.sendto != nullptr
             ? g_syscalls.sendto(fd, buf, len, flags, addr, addrlen)
             : ::sendto(fd, buf, len, flags, addr, addrlen);
}

bool to_sockaddr(const UdpEndpoint& ep, sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(ep.port);
  return inet_pton(AF_INET, ep.host.c_str(), &out.sin_addr) == 1;
}

TimePoint wall_now() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return TimePoint::from_nanos(ns);
}

}  // namespace

UdpSyscalls set_udp_syscalls_for_test(UdpSyscalls hooks) {
  UdpSyscalls previous = g_syscalls;
  g_syscalls = hooks;
  return previous;
}

UdpTransport::UdpTransport(sim::Simulator& simulator, NodeId self,
                           std::map<NodeId, UdpEndpoint> peers)
    : simulator_(simulator), self_(self), peers_(std::move(peers)) {
  auto it = peers_.find(self_);
  if (it == peers_.end()) {
    FDQOS_LOG_ERROR("udp: self node %d missing from peer map", self_);
    return;
  }
  // Fail fast on any endpoint that is not an IPv4 literal. The old code
  // validated lazily in send(), so a hostname peer produced an endless
  // per-send debug-log loop with every message silently dropped; now the
  // error surfaces once, at construction, naming the endpoint.
  for (const auto& [node, ep] : peers_) {
    sockaddr_in addr;
    if (!to_sockaddr(ep, addr)) {
      FDQOS_LOG_ERROR(
          "udp: node %d endpoint '%s:%u' is not an IPv4 literal (hostnames "
          "are not resolved; see net/udp_transport.hpp)",
          node, ep.host.c_str(), ep.port);
      return;
    }
    addrs_.emplace(node, addr);
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    FDQOS_LOG_ERROR("udp: socket() failed: %s", std::strerror(errno));
    return;
  }
  const sockaddr_in& self_addr = addrs_.at(self_);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&self_addr),
             sizeof self_addr) != 0) {
    FDQOS_LOG_ERROR("udp: bind(%s:%u) failed: %s", it->second.host.c_str(),
                    it->second.port, std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::bind(NodeId node, DeliverFn deliver) {
  FDQOS_REQUIRE(node == self_);
  deliver_ = std::move(deliver);
}

void UdpTransport::send(Message msg) {
  if (fd_ < 0) return;
  auto it = addrs_.find(msg.to);
  if (it == addrs_.end()) {
    FDQOS_LOG_WARN("udp: unknown destination node %d", msg.to);
    return;
  }
  const std::vector<std::uint8_t> wire = encode_message(msg);
  ssize_t rc;
  do {
    rc = sys_sendto(fd_, wire.data(), wire.size(), 0,
                    reinterpret_cast<const sockaddr*>(&it->second),
                    sizeof it->second);
  } while (rc < 0 && errno == EINTR);  // a signal is not a send failure
  if (rc < 0 || static_cast<std::size_t>(rc) != wire.size()) {
    // UDP is fire-and-forget; treat send errors (and short writes, which
    // would decode as garbage anyway) as loss on a fair-lossy link — but
    // count them, so a misconfigured or saturated deployment is visible
    // instead of silently mute.
    ++send_failures_;
    if (obs::enabled()) obs::instruments().udp_send_failures_total.inc();
    if (rc < 0) {
      FDQOS_LOG_DEBUG("udp: sendto failed: %s", std::strerror(errno));
    } else {
      FDQOS_LOG_DEBUG("udp: short sendto: %zd of %zu bytes", rc, wire.size());
    }
    return;
  }
  ++sent_;
  if (obs::enabled()) obs::instruments().udp_datagrams_sent.inc();
}

std::size_t UdpTransport::drain() {
  if (fd_ < 0) return 0;
  std::size_t delivered = 0;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t rc = sys_recv(fd_, buf, sizeof buf, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;  // interrupted, not drained — retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      FDQOS_LOG_DEBUG("udp: recv failed: %s", std::strerror(errno));
      break;
    }
    auto msg = decode_message({buf, static_cast<std::size_t>(rc)});
    if (!msg) {
      ++decode_failures_;
      if (obs::enabled()) obs::instruments().udp_decode_failures_total.inc();
      continue;
    }
    ++received_;
    if (obs::enabled()) obs::instruments().udp_datagrams_received.inc();
    if (deliver_) {
      deliver_(*msg);
      ++delivered;
    }
  }
  return delivered;
}

RealTimeDriver::RealTimeDriver(sim::Simulator& simulator,
                               UdpTransport& transport)
    : simulator_(simulator), transport_(transport) {}

int clamp_poll_timeout_ms(Duration wait) {
  if (wait <= Duration::zero()) return 0;
  // Round up so the sleep covers the whole wait, then cap: the old
  // `int(ns / 1e6) + 1` overflowed for waits beyond ~24.8 days, handing
  // poll() a negative timeout — an infinite block. One minute is long
  // enough to be cheap and short enough to recheck the deadline.
  constexpr std::int64_t kMaxTimeoutMs = 60'000;
  const std::int64_t ms = wait.count_nanos() / 1'000'000 + 1;
  return static_cast<int>(std::min(ms, kMaxTimeoutMs));
}

std::uint64_t RealTimeDriver::run_for(Duration duration) {
  FDQOS_REQUIRE(duration >= Duration::zero());
  stopped_.store(false, std::memory_order_relaxed);
  const TimePoint virtual_start = simulator_.now();
  const TimePoint wall_start = wall_now();
  const TimePoint deadline = virtual_start + duration;
  std::uint64_t executed = 0;

  auto to_virtual = [&](TimePoint wall) {
    return virtual_start + (wall - wall_start);
  };

  while (!stop_requested()) {
    const TimePoint v_now = to_virtual(wall_now());
    if (v_now >= deadline) break;

    // Fire everything due by the current wall instant.
    executed += simulator_.run_until(v_now);
    transport_.drain();
    if (stop_requested()) break;

    // Sleep in poll() until the next event or new data, capped at deadline.
    const TimePoint next = std::min(simulator_.next_event_time(), deadline);
    const Duration wait = next - to_virtual(wall_now());
    const int timeout_ms = clamp_poll_timeout_ms(wait);
    if (transport_.fd() >= 0) {
      pollfd pfd{transport_.fd(), POLLIN, 0};
      ::poll(&pfd, 1, timeout_ms);
    } else if (timeout_ms > 0) {
      // No socket to watch: sleep on the virtual deadline instead of
      // spinning through zero-timeout polls with an empty fd set.
      ::poll(nullptr, 0, timeout_ms);
    }
    // Datagrams are drained at the top of the next iteration, after the
    // simulator clock has been advanced to the current wall instant, so
    // receivers always observe a fresh now().
  }

  // Final catch-up to the deadline — unless a callback stopped the run, in
  // which case pending events must stay pending.
  if (!stop_requested()) executed += simulator_.run_until(deadline);
  return executed;
}

}  // namespace fdqos::net
