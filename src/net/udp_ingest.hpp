// UdpIngestSocket — batched datagram drain for the `fdqos serve` daemon.
//
// UdpTransport (net/udp_transport.hpp) drains one datagram per recv() and
// allocates a Message per decode — right for a peer in the experiment mesh,
// wrong for an ingest daemon absorbing a fleet's heartbeat traffic, where
// per-syscall and per-allocation costs dominate. This socket owns a
// preallocated slab of receive slots and drains up to `batch` datagrams
// per recv_batch() call via recvmmsg(2) on Linux, falling back to a
// single-recv loop elsewhere (or when Options::force_single_recv is set,
// which the tests use to pin both paths to identical behaviour). The
// steady state performs zero heap allocation: callers read the drained
// datagrams in place through datagram(i) views.
//
// Like UdpTransport, the bind host must be an IPv4 literal — construction
// fails fast (ok() == false) on anything inet_pton rejects.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fdqos::net {

class UdpIngestSocket {
 public:
  struct Options {
    std::string host = "127.0.0.1";  // IPv4 literal; see header comment
    std::uint16_t port = 0;          // 0 = kernel-assigned (local_port())
    std::size_t batch = 32;          // max datagrams drained per call
    std::size_t datagram_bytes = 65536;  // per-slot capacity (max UDP)
    int rcvbuf_bytes = 4 << 20;      // SO_RCVBUF request; 0 = kernel default
    bool force_single_recv = false;  // skip recvmmsg even where available
  };

  explicit UdpIngestSocket(const Options& opts);
  ~UdpIngestSocket();
  UdpIngestSocket(const UdpIngestSocket&) = delete;
  UdpIngestSocket& operator=(const UdpIngestSocket&) = delete;

  // False if construction failed (bad literal, socket/bind error); the
  // failure was logged and every recv_batch() returns 0.
  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t local_port() const { return local_port_; }

  // Drains up to Options::batch datagrams without blocking. Returns the
  // number drained (0 = nothing pending). EINTR is retried; any other
  // error ends the drain with what was already received. Slots stay valid
  // until the next recv_batch() call.
  std::size_t recv_batch();

  // Bytes of drained datagram i (i < the last recv_batch() return value).
  // A datagram longer than Options::datagram_bytes arrives truncated and
  // will fail decoding downstream — counted there, never a crash here.
  std::span<const std::uint8_t> datagram(std::size_t i) const;

  bool using_recvmmsg() const { return use_recvmmsg_; }

 private:
  std::size_t recv_batch_single();

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::size_t batch_ = 0;
  std::size_t slot_bytes_ = 0;
  bool use_recvmmsg_ = false;
  std::vector<std::uint8_t> slab_;     // batch_ × slot_bytes_ receive slots
  std::vector<std::size_t> lengths_;   // filled per drained datagram
  std::vector<std::uint8_t> headers_;  // opaque mmsghdr/iovec storage (Linux)
};

}  // namespace fdqos::net
