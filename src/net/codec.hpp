// Portable binary codec for Message (little-endian, length-prefixed).
//
// Used by the real UDP transport; the simulated transport passes Message
// objects directly, so simulation results are codec-independent while the
// wire format stays round-trip tested.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/message.hpp"

namespace fdqos::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);  // u32 length prefix

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  // Each read returns nullopt on truncation; the reader then stays failed.
  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<std::vector<std::uint8_t>> bytes();

  bool exhausted() const { return pos_ == data_.size(); }
  bool failed() const { return failed_; }

 private:
  bool take(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// Message wire format: magic "FDQ1", from, to, type, seq, send_time, payload.
std::vector<std::uint8_t> encode_message(const Message& msg);
std::optional<Message> decode_message(std::span<const std::uint8_t> wire);

}  // namespace fdqos::net
