// Portable binary codec for Message (little-endian, length-prefixed).
//
// Used by the real UDP transport; the simulated transport passes Message
// objects directly, so simulation results are codec-independent while the
// wire format stays round-trip tested.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/message.hpp"

namespace fdqos::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);  // u32 length prefix

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  // Each read returns nullopt on truncation; the reader then stays failed.
  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<std::vector<std::uint8_t>> bytes();

  bool exhausted() const { return pos_ == data_.size(); }
  bool failed() const { return failed_; }

 private:
  bool take(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// Message wire format: magic "FDQ1", from, to, type, seq, send_time, payload.
std::vector<std::uint8_t> encode_message(const Message& msg);
std::optional<Message> decode_message(std::span<const std::uint8_t> wire);

// ---------------------------------------------------------------------------
// Heartbeat fast paths (the `fdqos serve` ingest plane, docs/serve.md).

// A heartbeat decoded without touching the heap: the fields the ingest
// plane needs, nothing else. Payload bytes are length-validated but never
// copied.
struct HeartbeatFrame {
  NodeId from = 0;
  NodeId to = 0;
  std::int64_t seq = 0;
  TimePoint send_time;
};

// Decodes a single-message datagram holding a kHeartbeat. Returns false on
// malformed wire *or* any non-heartbeat type — callers that must handle
// other message types fall back to decode_message(). Accepts exactly the
// bytes encode_message() produces; zero allocation.
bool decode_heartbeat_frame(std::span<const std::uint8_t> wire,
                            HeartbeatFrame& out);

// Packed heartbeat batch ("FDQB"): one datagram carrying N heartbeats —
// the wire-level batching a high-rate sender uses so ingest cost is not
// dominated by per-datagram network-stack traversal (HPX-5's parcel
// coalescing idiom). Layout, little-endian:
//   u32 magic "FDQB" | u32 count | count × { u32 from | i64 seq | i64 send_ns }
// The destination and type are implicit (the receiving daemon, kHeartbeat).
inline constexpr std::size_t kPackedBatchHeaderBytes = 8;
inline constexpr std::size_t kPackedRecordBytes = 20;

// Appends the batch header / one record to a caller-owned buffer (reuse the
// buffer across batches for an allocation-free sender steady state).
void begin_packed_batch(std::vector<std::uint8_t>& buf);
void append_packed_heartbeat(std::vector<std::uint8_t>& buf, NodeId from,
                             std::int64_t seq, TimePoint send_time);
// Patches the record count into the header; returns it. `buf` must hold a
// header plus whole records (anything else is a caller bug).
std::uint32_t finish_packed_batch(std::vector<std::uint8_t>& buf);

// Zero-copy reader over a packed batch datagram.
class PackedBatchView {
 public:
  std::uint32_t count() const { return count_; }
  // Decodes record i (< count()) into `out`; no allocation, no bounds
  // surprises — decode_packed_batch validated the byte range.
  void get(std::size_t i, HeartbeatFrame& out) const;

 private:
  friend bool decode_packed_batch(std::span<const std::uint8_t> wire,
                                  PackedBatchView& out);
  std::span<const std::uint8_t> records_;
  std::uint32_t count_ = 0;
};

// True iff `wire` is a well-formed packed batch (magic, declared count
// consistent with the byte length). A count of zero is valid and empty.
bool decode_packed_batch(std::span<const std::uint8_t> wire,
                         PackedBatchView& out);

}  // namespace fdqos::net
