// Wire-level message model.
//
// Matches the paper's link assumptions (§2.2): messages travel over fair-
// lossy, UDP-like links — they can be dropped or reordered but never
// created, corrupted, or duplicated. A heartbeat is a Message of type
// kHeartbeat whose `seq` is the sender's cycle number i (send time
// σ_i = i·η).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace fdqos::net {

using NodeId = std::int32_t;

enum class MessageType : std::uint32_t {
  kHeartbeat = 1,
  kPing = 2,       // pull-style / clock-sync request
  kPong = 3,       // pull-style / clock-sync response
  kUser = 100,     // application payloads
};

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  MessageType type = MessageType::kHeartbeat;
  std::int64_t seq = 0;
  TimePoint send_time;               // stamped by the sender (global timeline)
  std::vector<std::uint8_t> payload;  // opaque application bytes

  std::string to_string() const;
};

const char* message_type_name(MessageType type);

}  // namespace fdqos::net
