#include "serve/daemon.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "fd/suite.hpp"
#include "net/codec.hpp"
#include "net/udp_transport.hpp"
#include "obs/instruments.hpp"
#include "obs/runs.hpp"

namespace fdqos::serve {
namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Groups-then-lanes assembly shared with the experiment engines: one
// predictor group per distinct predictor_key, every lane hung off its
// group, so e.g. the paper suite evaluates 5 shared predictors per
// endpoint, not 30.
void assemble_member(fd::DetectorBank& bank,
                     const std::vector<fd::FdSpec>& specs) {
  std::unordered_map<std::string, std::size_t> group_of;
  for (const auto& spec : specs) {
    std::size_t group;
    auto it = spec.predictor_key.empty() ? group_of.end()
                                         : group_of.find(spec.predictor_key);
    if (it != group_of.end()) {
      group = it->second;
    } else {
      group = bank.add_group(spec.make_predictor());
      if (!spec.predictor_key.empty()) group_of.emplace(spec.predictor_key, group);
    }
    bank.add_lane(spec.name, group, spec.make_margin());
  }
}

// lite = one Last+CI_low lane: the cheapest paper-family detector, enough
// for liveness monitoring at fleet scale. paper = the full 30-lane family.
std::vector<fd::FdSpec> suite_specs(const std::string& suite) {
  if (suite == "paper") return fd::make_paper_suite();
  if (suite == "lite") {
    fd::FdSpec spec;
    spec.name = "Last+CI_low";
    spec.predictor_label = "Last";
    spec.margin_label = "CI_low";
    spec.predictor_key = fd::paper_predictor_key("Last");
    spec.make_predictor = fd::make_paper_predictor("Last");
    spec.make_margin = fd::make_paper_margin("CI_low");
    return {std::move(spec)};
  }
  return {};
}

}  // namespace

ServeDaemon::ServeDaemon(ServeConfig config) : config_(std::move(config)) {}

ServeDaemon::~ServeDaemon() = default;

std::uint16_t ServeDaemon::udp_port() const {
  return socket_ != nullptr ? socket_->local_port() : 0;
}

std::vector<std::string> ServeDaemon::capture_segments() const {
  return capture_ != nullptr ? capture_->segments()
                             : std::vector<std::string>{};
}

bool ServeDaemon::init() {
  FDQOS_REQUIRE(!initialized_);
  FDQOS_REQUIRE(config_.max_endpoints > 0);
  FDQOS_REQUIRE(config_.eta > Duration::zero());

  const std::vector<fd::FdSpec> specs = suite_specs(config_.suite);
  if (specs.empty()) {
    FDQOS_LOG_ERROR("serve: unknown suite '%s' (want lite or paper)",
                    config_.suite.c_str());
    return false;
  }

  net::UdpIngestSocket::Options sopts;
  sopts.host = config_.host;
  sopts.port = config_.port;
  sopts.batch = config_.batch;
  sopts.force_single_recv = config_.force_single_recv;
  socket_ = std::make_unique<net::UdpIngestSocket>(sopts);
  if (!socket_->ok()) return false;

  fd::FleetBank::Config fc;
  fc.eta = config_.eta;
  fc.epoch = TimePoint::origin();
  fc.cold_start_timeout = config_.eta;
  fc.name = "serve";
  fc.expected_endpoints = config_.max_endpoints;
  fleet_ = std::make_unique<fd::FleetBank>(simulator_, fc);
  // Pre-allocate every admission slot: the FleetBank member set is fixed
  // at start(), so admission capacity is decided here, not under load.
  for (std::size_t slot = 0; slot < config_.max_endpoints; ++slot) {
    assemble_member(
        fleet_->add_member(static_cast<net::NodeId>(slot)), specs);
  }
  fleet_->start();
  ingest_ = std::make_unique<fd::FleetIngest>(*fleet_, config_.max_endpoints);

  if (config_.capture) {
    wan::RotatingFdtWriter::Options copts;
    copts.directory = config_.capture_dir;
    copts.prefix = config_.capture_prefix;
    copts.max_samples = config_.segment_samples;
    copts.meta.clock_base_ns = 0;  // send-time column is daemon-relative
    copts.meta.source = "fdqos serve " + config_.host + ":" +
                        std::to_string(socket_->local_port()) + " suite=" +
                        config_.suite;
    capture_ = std::make_unique<wan::RotatingFdtWriter>(std::move(copts));
    if (!capture_->ok()) {
      FDQOS_LOG_ERROR("serve: capture setup failed: %s",
                      capture_->error().c_str());
      return false;
    }
  }

  initialized_ = true;
  return true;
}

void ServeDaemon::offer(net::NodeId from, std::int64_t seq,
                        std::int64_t send_ns, std::int64_t recv_wall_ns,
                        std::int64_t wall_start_ns) {
  if (!ingest_->offer(from, seq)) {
    ++stats_.drops_capacity;
    return;
  }
  ++stats_.heartbeats;
  if (capture_ != nullptr) {
    // The sender stamps send_ns on its own steady clock; on one host
    // (loopback, the bench) that is the daemon's clock too. Clamp the
    // delay at zero — the .fdt contract rejects negative delays, and a
    // cross-host clock offset must degrade the capture, not kill it.
    const std::int64_t delay_ns = std::max<std::int64_t>(
        0, recv_wall_ns - send_ns);
    capture_->append(TimePoint::from_nanos(send_ns - wall_start_ns),
                     Duration::nanos(delay_ns));
    ++stats_.captured;
  }
}

void ServeDaemon::process_batch(std::size_t drained, TimePoint v_now,
                                std::int64_t wall_start_ns) {
  const std::int64_t recv_wall_ns = wall_start_ns + v_now.count_nanos();
  const Stats before = stats_;
  net::PackedBatchView packed;
  net::HeartbeatFrame frame;
  for (std::size_t i = 0; i < drained; ++i) {
    const auto wire = socket_->datagram(i);
    if (net::decode_packed_batch(wire, packed)) {
      for (std::uint32_t j = 0; j < packed.count(); ++j) {
        packed.get(j, frame);
        offer(frame.from, frame.seq, frame.send_time.count_nanos(),
              recv_wall_ns, wall_start_ns);
      }
    } else if (net::decode_heartbeat_frame(wire, frame)) {
      offer(frame.from, frame.seq, frame.send_time.count_nanos(),
            recv_wall_ns, wall_start_ns);
    } else {
      ++stats_.drops_decode;
    }
  }
  ingest_->flush();
  ++stats_.batches;
  stats_.datagrams += drained;
  if (obs::enabled()) {
    auto& ins = obs::instruments();
    ins.serve_batches_total.inc();
    ins.serve_datagrams_total.inc(drained);
    ins.serve_batch_size.observe(static_cast<double>(drained));
    // One delta-flush per batch keeps the per-heartbeat path free of
    // shared-cacheline traffic even with obs on.
    if (stats_.drops_decode != before.drops_decode) {
      ins.serve_drops_decode.inc(stats_.drops_decode - before.drops_decode);
    }
    if (stats_.drops_capacity != before.drops_capacity) {
      ins.serve_drops_capacity.inc(stats_.drops_capacity -
                                   before.drops_capacity);
    }
  }
}

void ServeDaemon::publish_status(bool finished) {
  obs::RunStatus row;
  row.id = config_.run_id;
  row.verb = "serve";
  row.suite = config_.suite;
  row.runs_total = 1;
  row.runs_started = 1;
  row.runs_done = finished ? 1 : 0;
  row.heartbeats_sent = stats_.heartbeats;
  row.detectors = fleet_->total_lanes();
  row.suspecting = fleet_->suspecting_count();
  row.sim_time_s = simulator_.now().to_seconds_double();
  row.finished = finished;
  obs::RunRegistry::global().update(row);
}

int ServeDaemon::run() {
  if (!initialized_) {
    FDQOS_LOG_ERROR("serve: run() without successful init()");
    return 1;
  }
  const std::int64_t wall_start_ns = wall_ns();
  const TimePoint deadline = config_.duration > Duration::zero()
                                 ? TimePoint::origin() + config_.duration
                                 : TimePoint::max();
  // Status heartbeat rides the simulator like every other timer: one
  // event per interval refreshing the /runs row.
  std::function<void()> tick = [&] {
    publish_status(false);
    simulator_.schedule_at(simulator_.now() + config_.status_interval, tick);
  };
  simulator_.schedule_at(TimePoint::origin() + config_.status_interval, tick);
  publish_status(false);
  obs::RunFinalizer finalizer(config_.run_id);

  while (!stop_requested()) {
    const TimePoint v_now =
        TimePoint::origin() + Duration::nanos(wall_ns() - wall_start_ns);
    if (v_now >= deadline) break;
    // Fire detector timers and cycle ticks due by this wall instant, so
    // every observe_heartbeat sees a fresh now().
    simulator_.run_until(std::min(v_now, deadline));
    const std::size_t drained = socket_->recv_batch();
    if (drained > 0) {
      process_batch(drained, v_now, wall_start_ns);
      if (capture_ != nullptr && !capture_->ok()) {
        FDQOS_LOG_ERROR("serve: capture failed: %s",
                        capture_->error().c_str());
        publish_status(true);
        return 1;
      }
      continue;  // stay hot while traffic is flowing
    }
    // Idle: sleep in poll() until new data, the next detector deadline,
    // or the run deadline — whichever lands first.
    const TimePoint next = std::min(simulator_.next_event_time(), deadline);
    const TimePoint v_idle =
        TimePoint::origin() + Duration::nanos(wall_ns() - wall_start_ns);
    const int timeout_ms = net::clamp_poll_timeout_ms(next - v_idle);
    pollfd pfd{socket_->fd(), POLLIN, 0};
    ::poll(&pfd, 1, timeout_ms);
  }

  bool clean = true;
  if (capture_ != nullptr) {
    if (!capture_->finalize()) {
      FDQOS_LOG_ERROR("serve: capture finalize failed: %s",
                      capture_->error().c_str());
      clean = false;
    }
  }
  publish_status(true);
  return clean ? 0 : 1;
}

}  // namespace fdqos::serve
