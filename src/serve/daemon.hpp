// serve::ServeDaemon — the `fdqos serve` live heavy-traffic ingest daemon
// (ROADMAP item 4).
//
// One long-running process that turns the repo's simulation-first stack
// into a production service mode:
//
//   UdpIngestSocket ──recvmmsg batches──▶ codec fast paths ──▶ FleetIngest
//        │                                     │                   │
//        │                              (decode drops)      (capacity drops)
//        ▼                                     ▼                   ▼
//   poll() idle wait                  obs serve_* families   FleetBank shard
//                                                                 │
//                              RotatingFdtWriter ◀── delay capture ┘
//
// The daemon drives a real-time loop in the RealTimeDriver idiom: virtual
// time tracks the wall clock (steady_clock), the simulator runs detector
// timers and cycle ticks up to "now", then one socket batch is drained,
// decoded without allocation, and flushed into the FleetBank as a single
// columnar ingest. Unknown sources are admitted onto pre-allocated member
// slots on first sight; beyond --max-endpoints they are counted and
// dropped. Every heartbeat's (send_time, delay) lands in rotating .fdt
// segments, each independently replayable through `fdqos replay` while
// the daemon is still running.
//
// Wire formats accepted (net/codec.hpp): single "FDQ1" heartbeat
// datagrams (what UdpTransport peers send) and packed "FDQB" batches
// (what a high-rate sender uses). Anything else counts as a decode drop.
//
// Shutdown: request_stop() is async-signal-safe (one relaxed atomic
// store) — the CLI wires SIGINT/SIGTERM straight to it — and run()
// finalizes capture segments and the /runs row before returning, so a
// signalled daemon never leaves a truncated live segment behind.
// See docs/serve.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "fd/fleet_bank.hpp"
#include "fd/fleet_ingest.hpp"
#include "net/udp_ingest.hpp"
#include "sim/simulator.hpp"
#include "wan/tracestore.hpp"

namespace fdqos::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";  // IPv4 literal (net/udp_ingest.hpp)
  std::uint16_t port = 0;          // 0 = kernel-assigned
  std::size_t max_endpoints = 1024;
  Duration eta = Duration::millis(1000);  // fleet heartbeat period
  std::size_t batch = 32;                 // datagrams per recvmmsg drain
  bool force_single_recv = false;         // portable recv() path (tests)

  // Continuous capture (off => no segments are written).
  bool capture = true;
  std::string capture_dir = ".";
  std::string capture_prefix = "serve";
  std::uint64_t segment_samples = 1'000'000;

  // lite: one Last+CI_low lane per endpoint — the cheap liveness suite.
  // paper: the full 30-lane paper family per endpoint.
  std::string suite = "lite";

  Duration duration = Duration::zero();  // zero = run until stopped
  Duration status_interval = Duration::seconds(1);
  std::string run_id = "serve";
};

class ServeDaemon {
 public:
  struct Stats {
    std::uint64_t batches = 0;      // non-empty socket drains
    std::uint64_t datagrams = 0;    // datagrams received
    std::uint64_t heartbeats = 0;   // heartbeats ingested into the fleet
    std::uint64_t drops_decode = 0;    // undecodable datagrams
    std::uint64_t drops_capacity = 0;  // heartbeats beyond max-endpoints
    std::uint64_t captured = 0;        // samples written to segments
  };

  explicit ServeDaemon(ServeConfig config);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Binds the socket, assembles the fleet, opens the first capture
  // segment. False (with logged reasons) on any failure; run() on an
  // uninitialized daemon returns immediately.
  bool init();

  // Blocks in the real-time loop until request_stop() or the configured
  // duration elapses. Returns 0 on a clean run (including a signalled
  // one), 1 if init() failed or capture failed mid-run.
  int run();

  // Async-signal-safe: one relaxed atomic store. Callable from any
  // thread or from a signal handler.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  std::uint16_t udp_port() const;
  const Stats& stats() const { return stats_; }
  const fd::FleetBank& fleet() const { return *fleet_; }
  const fd::FleetIngest& ingest() const { return *ingest_; }
  // Finalized capture segments so far (oldest first); empty if capture
  // was disabled.
  std::vector<std::string> capture_segments() const;

 private:
  void process_batch(std::size_t drained, TimePoint v_now,
                     std::int64_t wall_start_ns);
  void offer(net::NodeId from, std::int64_t seq, std::int64_t send_ns,
             std::int64_t recv_wall_ns, std::int64_t wall_start_ns);
  void publish_status(bool finished);

  ServeConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<net::UdpIngestSocket> socket_;
  std::unique_ptr<fd::FleetBank> fleet_;
  std::unique_ptr<fd::FleetIngest> ingest_;
  std::unique_ptr<wan::RotatingFdtWriter> capture_;
  Stats stats_;
  std::atomic<bool> stop_{false};
  bool initialized_ = false;
};

}  // namespace fdqos::serve
