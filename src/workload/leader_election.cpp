#include "workload/leader_election.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "exp/report.hpp"
#include "membership/view_manager.hpp"
#include "obs/metrics.hpp"

namespace fdqos::workload {

LeaderElectionWorkload::LeaderElectionWorkload(exp::QosExperimentConfig config)
    : qos_(hook_probes(std::move(config))) {}

const std::string& LeaderElectionWorkload::name() const {
  static const std::string kName = "leader-election";
  return kName;
}

exp::QosExperimentConfig LeaderElectionWorkload::hook_probes(
    exp::QosExperimentConfig config) {
  // Chain, never replace: a caller-installed probe keeps firing after the
  // capture. The closures only dereference `this` from run_unit onwards,
  // after prepare() sized captures_.
  auto user_transitions = std::move(config.transition_probe);
  config.transition_probe = [this, user_transitions](
                                std::size_t run, std::size_t detector,
                                TimePoint t, bool suspecting) {
    captures_[run].transitions.push_back({detector, t, suspecting});
    if (user_transitions) user_transitions(run, detector, t, suspecting);
  };
  auto user_crashes = std::move(config.crash_probe);
  config.crash_probe = [this, user_crashes](std::size_t run,
                                            std::size_t endpoint, TimePoint t,
                                            bool crashed) {
    captures_[run].toggles.push_back({t, crashed});
    if (user_crashes) user_crashes(run, endpoint, t, crashed);
  };
  return config;
}

void LeaderElectionWorkload::prepare() {
  // Leader election is defined over the paper's two-node topology: node 0
  // is the one preferred leader every detector lane watches. A fleet of
  // monitored endpoints has no such single leader, so reject loudly
  // instead of producing a meaningless score.
  if (qos_.config().endpoints > 1 || qos_.config().force_fleet_engine) {
    std::fprintf(stderr,
                 "fdqos: the leader-election workload runs on the two-node "
                 "topology; fleet mode (--endpoints > 1) is not supported\n");
    FDQOS_REQUIRE(!"leader-election workload is incompatible with fleet mode");
  }
  captures_.assign(qos_.config().runs, RunCapture{});
  qos_.prepare();
}

void LeaderElectionWorkload::reduce() {
  qos_.reduce();
  report_ = LeaderReport{};
  report_.qos = qos_.report();

  const exp::QosExperimentConfig& config = qos_.config();
  const auto& suite = qos_.suite();
  const TimePoint warmup_end = TimePoint::origin() + config.warmup;
  const TimePoint run_end = TimePoint::origin() +
                            config.eta * config.num_cycles + config.ttr +
                            Duration::seconds(5);
  report_.window_ms = (run_end - warmup_end).to_millis_double() *
                      static_cast<double>(config.runs);

  report_.lanes.resize(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    report_.lanes[i].name = suite[i].name;
  }
  std::vector<Duration> leaderless(suite.size());
  std::vector<Duration> detected(suite.size());
  std::vector<Duration> wrong(suite.size());
  Duration downtime = Duration::zero();

  // Ordered post-join reduction (the PR 2 rule): fold run 0, 1, ... in
  // ascending order; every accumulator is integer-nanosecond Durations or
  // counters, so the pooled scores are independent of --jobs, engine and
  // scheduling. Per-lane transition streams arrive time-ordered from both
  // engines (the LP engine groups them by lane but keeps lane order); the
  // crash/transition merge below uses the engines' crash-first tie rule,
  // so seq and lp runs score identically by construction.
  for (std::size_t run = 0; run < config.runs; ++run) {
    const RunCapture& capture = captures_[run];

    // Node 0 downtime inside the scoring window — lane-independent ground
    // truth, accumulated once per run.
    {
      bool up = true;
      TimePoint down_since = TimePoint::origin();
      for (const CrashToggle& toggle : capture.toggles) {
        if (toggle.crashed) {
          up = false;
          down_since = toggle.t;
        } else {
          if (!up) {
            const TimePoint lo = std::max(down_since, warmup_end);
            const TimePoint hi = std::min(toggle.t, run_end);
            if (hi > lo) downtime += hi - lo;
          }
          up = true;
        }
      }
      if (!up) {
        const TimePoint lo = std::max(down_since, warmup_end);
        if (run_end > lo) downtime += run_end - lo;
      }
    }

    // Bucket the run's transitions by lane (already time-ordered within a
    // lane under both engines).
    std::vector<std::vector<const Transition*>> by_lane(suite.size());
    for (const Transition& tr : capture.transitions) {
      FDQOS_REQUIRE(tr.detector < suite.size());
      by_lane[tr.detector].push_back(&tr);
    }

    for (std::size_t i = 0; i < suite.size(); ++i) {
      LeaderLaneScore& lane = report_.lanes[i];
      // The lane's Ω oracle: a two-member view manager on node 1. The
      // rotating-coordinator rule (smallest trusted member) makes node 0
      // the coordinator while trusted and node 1 the fallback leader
      // while node 0 is suspected.
      membership::ViewManager vm(1, {0, 1});
      vm.set_observer([&lane, warmup_end](const membership::View&,
                                          TimePoint when, bool changed) {
        if (changed && when >= warmup_end) ++lane.flaps;
      });

      bool node0_up = true;
      bool suspecting = false;
      TimePoint prev = TimePoint::origin();
      TimePoint crash_start = TimePoint::origin();
      // Leaderless time accrued in the *current* down period; flushed into
      // the detected bucket only when the period ends with the detector
      // suspecting (the tracker's T_D sample for that crash — measured to
      // the latest suspicion start — covers every coordinator-0 segment
      // of the period, so the bucket stays bounded by the pooled T_D sum).
      Duration period_leaderless = Duration::zero();

      const auto account = [&](TimePoint to) {
        const TimePoint lo = std::max(prev, warmup_end);
        const TimePoint hi = std::min(to, run_end);
        if (hi > lo) {
          const Duration d = hi - lo;
          if (vm.view().coordinator() == 0) {
            if (!node0_up) {
              leaderless[i] += d;
              period_leaderless += d;
            }
          } else if (node0_up) {
            wrong[i] += d;
          }
        }
        prev = to;
      };

      const auto& lane_transitions = by_lane[i];
      const auto& toggles = capture.toggles;
      std::size_t c = 0;
      std::size_t t = 0;
      while (c < toggles.size() || t < lane_transitions.size()) {
        const bool take_crash =
            t >= lane_transitions.size() ||
            (c < toggles.size() && toggles[c].t <= lane_transitions[t]->t);
        if (take_crash) {
          account(toggles[c].t);
          if (toggles[c].crashed) {
            node0_up = false;
            crash_start = toggles[c].t;
            period_leaderless = Duration::zero();
          } else {
            if (suspecting && crash_start >= warmup_end) {
              detected[i] += period_leaderless;
            }
            node0_up = true;
            period_leaderless = Duration::zero();
          }
          ++c;
        } else {
          const Transition& tr = *lane_transitions[t];
          account(tr.t);
          if (tr.suspecting) {
            if (!node0_up && tr.t >= warmup_end) ++lane.failovers;
            suspecting = true;
            vm.peer_suspected(0, tr.t);
          } else {
            suspecting = false;
            vm.peer_trusted(0, tr.t);
          }
          ++t;
        }
      }
      account(run_end);  // tail segment; a censored outage never flushes
      vm.finalize(run_end);
    }
  }

  for (std::size_t i = 0; i < suite.size(); ++i) {
    report_.lanes[i].leaderless_ms = leaderless[i].to_millis_double();
    report_.lanes[i].leaderless_detected_ms = detected[i].to_millis_double();
    report_.lanes[i].wrong_leader_ms = wrong[i].to_millis_double();
  }
  report_.downtime_ms = downtime.to_millis_double();

  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    const obs::Labels base = {{"run", config.run_id},
                              {"suite", config.suite_label},
                              {"workload", name()}};
    for (const LeaderLaneScore& lane : report_.lanes) {
      obs::Labels labels = base;
      labels.emplace_back("detector", lane.name);
      reg.gauge("fdqos_workload_leaderless_ms",
                "Total time without a working leader (believing a crashed "
                "coordinator) inside the scoring window, summed over runs, "
                "milliseconds",
                labels)
          .set(lane.leaderless_ms);
      reg.counter("fdqos_workload_flaps_total",
                  "Coordinator changes inside the scoring window, summed "
                  "over runs",
                  labels)
          .inc(lane.flaps);
    }
  }
}

std::vector<exp::ReportSection> LeaderElectionWorkload::report_sections()
    const {
  std::vector<exp::ReportSection> sections;
  exp::ReportSection leader;
  leader.title = "leader-election";
  leader.table = leader_table(report_);
  char line[160];
  std::snprintf(line, sizeof(line),
                "node0 downtime: %s ms of %s ms scored (%zu runs)",
                stats::format_double(report_.downtime_ms, 3).c_str(),
                stats::format_double(report_.window_ms, 3).c_str(),
                report_.qos.config.runs);
  leader.notes.push_back(line);
  sections.push_back(std::move(leader));
  // The embedded detector-QoS view follows, in its own fixed order.
  for (auto& section : qos_.report_sections()) {
    sections.push_back(std::move(section));
  }
  return sections;
}

stats::TableWriter leader_table(const LeaderReport& report) {
  stats::TableWriter table(
      "Leader election: time-without-leader per detector");
  table.set_columns({"detector", "leaderless_ms", "detected_ms",
                     "wrong_leader_ms", "flaps", "failovers"});
  for (const LeaderLaneScore& lane : report.lanes) {
    table.add_row({lane.name, stats::format_double(lane.leaderless_ms, 3),
                   stats::format_double(lane.leaderless_detected_ms, 3),
                   stats::format_double(lane.wrong_leader_ms, 3),
                   std::to_string(lane.flaps),
                   std::to_string(lane.failovers)});
  }
  return table;
}

std::string leader_report_fingerprint(const LeaderReport& report) {
  std::string out = leader_table(report).to_csv();
  out += "downtime_ms," + stats::format_double(report.downtime_ms, 6) + "\n";
  out += "window_ms," + stats::format_double(report.window_ms, 6) + "\n";
  out += exp::qos_report_fingerprint(report.qos);
  return out;
}

std::vector<exp::InvariantViolation> leader_invariant_violations(
    const LeaderReport& report) {
  std::vector<exp::InvariantViolation> violations;
  const auto violate = [&violations](const std::string& invariant,
                                     std::string detail) {
    violations.push_back({invariant, std::move(detail)});
  };
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LeaderLaneScore& lane = report.lanes[i];
    const auto tag = [&lane](const char* what) {
      return lane.name + ": " + what;
    };
    if (!(std::isfinite(lane.leaderless_ms) &&
          std::isfinite(lane.leaderless_detected_ms) &&
          std::isfinite(lane.wrong_leader_ms))) {
      violate("finite-scores", tag("non-finite score"));
      continue;
    }
    if (lane.leaderless_ms < 0.0) {
      violate("leaderless-nonnegative",
              tag("leaderless_ms < 0: ") +
                  stats::format_double(lane.leaderless_ms, 6));
    }
    if (lane.wrong_leader_ms < 0.0) {
      violate("wrong-leader-nonnegative",
              tag("wrong_leader_ms < 0: ") +
                  stats::format_double(lane.wrong_leader_ms, 6));
    }
    // A lane is leaderless only while node 0 is actually down, so its
    // leaderless time can never exceed the ground-truth downtime.
    const double downtime_eps = 1e-6 * (report.downtime_ms + 1.0);
    if (lane.leaderless_ms > report.downtime_ms + downtime_eps) {
      violate("leaderless-bounded-by-downtime",
              tag("leaderless_ms ") +
                  stats::format_double(lane.leaderless_ms, 6) +
                  " > downtime_ms " +
                  stats::format_double(report.downtime_ms, 6));
    }
    // Detected outages: each flushed period is covered by that crash's
    // T_D sample (measured to the latest suspicion start), so the bucket
    // is bounded by the pooled T_D sum.
    if (i < report.qos.results.size() &&
        report.qos.results[i].name == lane.name) {
      const stats::Summary& td =
          report.qos.results[i].metrics.detection_time_ms;
      const double td_eps = 1e-5 * (static_cast<double>(td.count) + 1.0);
      if (lane.leaderless_detected_ms > td.sum + td_eps) {
        violate("leaderless-bounded-by-td",
                tag("detected_ms ") +
                    stats::format_double(lane.leaderless_detected_ms, 6) +
                    " > td_sum_ms " + stats::format_double(td.sum, 6));
      }
    }
    if (report.qos.total_crashes == 0 &&
        (lane.leaderless_ms != 0.0 || lane.failovers != 0)) {
      violate("leaderless-zero-without-crashes",
              tag("no crashes but leaderless_ms ") +
                  stats::format_double(lane.leaderless_ms, 6) + ", failovers " +
                  std::to_string(lane.failovers));
    }
    if (lane.failovers > lane.flaps) {
      violate("flap-failover-consistency",
              tag("failovers ") + std::to_string(lane.failovers) + " > flaps " +
                  std::to_string(lane.flaps));
    }
  }
  return violations;
}

void register_builtin_workloads() {
  exp::register_workload("qos", [](const exp::QosExperimentConfig& config) {
    return std::unique_ptr<exp::Workload>(
        std::make_unique<exp::QosWorkload>(config));
  });
  exp::register_workload(
      "leader-election", [](const exp::QosExperimentConfig& config) {
        return std::unique_ptr<exp::Workload>(
            std::make_unique<LeaderElectionWorkload>(config));
      });
}

}  // namespace fdqos::workload
