// workload::LeaderElectionWorkload — the first detector-driven application
// workload (ISSUE 9 / ROADMAP item 3).
//
// Crash-recovery leader election over the paper topology: node 0 (the
// monitored process) is the preferred leader; node 1 (the monitor) runs
// the whole detector suite against it. Each detector lane drives its own
// membership::ViewManager over {0, 1} as an Ω-style oracle — the
// rotating-coordinator rule elects the smallest trusted member, so the
// lane's coordinator is node 0 while trusted and node 1 (the local
// fallback) while suspected. What the application experiences is then
// scored per detector configuration, the paper's §2.1 motivation made
// measurable:
//
//   leaderless_ms    time believing the dead node 0 still leads
//                    (coordinator == 0 while node 0 is crashed) — the
//                    time-without-leader metric, the detection-speed cost.
//   wrong_leader_ms  time failed over while node 0 was alive
//                    (coordinator == 1 while node 0 is up) — the wrongful-
//                    eviction accuracy cost.
//   flaps            coordinator changes inside the scoring window.
//   failovers        flaps to node 1 that ended a real outage (a suspicion
//                    arriving while node 0 was down).
//
// The workload embeds a QosWorkload and taps its engines through the
// transition/crash probe hooks, so it inherits every execution mode —
// seeds, chaos scenarios, tracestore replay, seq|lp engines, any --jobs —
// and its report carries the full detector-QoS report alongside the
// application scores. Scoring replays the captured per-run streams with
// the same per-lane two-stream merge and crash-first tie rule the LP
// engine uses, so the report is byte-identical across engines and jobs.
//
// Fleet mode is rejected: leader election is defined over the two-node
// topology (endpoints > 1 has no single preferred leader).
#pragma once

#include <string>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/qos_workload.hpp"
#include "exp/workload.hpp"

namespace fdqos::workload {

// Per-detector application scores, pooled over all runs in run order.
struct LeaderLaneScore {
  std::string name;  // detector (lane) name, suite order
  double leaderless_ms = 0.0;
  // The subset of leaderless time from outages that ended in a failover
  // and began inside the scoring window: each such interval is one of the
  // detector's T_D samples clipped to the window, so this is bounded by
  // the pooled T_D sum (the "leaderless-bounded-by-td" invariant).
  double leaderless_detected_ms = 0.0;
  double wrong_leader_ms = 0.0;
  std::uint64_t flaps = 0;
  std::uint64_t failovers = 0;
};

struct LeaderReport {
  exp::QosReport qos;  // the underlying detector-QoS report
  std::vector<LeaderLaneScore> lanes;
  // Node 0 downtime inside the scoring window, summed over runs (lane-
  // independent ground truth: every lane saw the same crash schedule).
  double downtime_ms = 0.0;
  // Scoring-window length (warmup end to run end) times runs.
  double window_ms = 0.0;
};

class LeaderElectionWorkload final : public exp::Workload {
 public:
  explicit LeaderElectionWorkload(exp::QosExperimentConfig config);

  const std::string& name() const override;

  void prepare() override;
  std::size_t unit_count() const override { return qos_.unit_count(); }
  void begin(std::size_t jobs) override { qos_.begin(jobs); }
  void run_unit(std::size_t unit) override { qos_.run_unit(unit); }
  void reduce() override;
  std::vector<exp::ReportSection> report_sections() const override;
  std::size_t requested_jobs() const override {
    return qos_.requested_jobs();
  }

  // Valid after reduce().
  const LeaderReport& report() const { return report_; }

 private:
  struct Transition {
    std::size_t detector;
    TimePoint t;
    bool suspecting;
  };
  struct CrashToggle {
    TimePoint t;
    bool crashed;
  };
  struct RunCapture {
    std::vector<Transition> transitions;  // simulation order (per lane)
    std::vector<CrashToggle> toggles;     // simulation order
  };

  // Installs the capture probes (chaining any caller-provided ones); runs
  // in the member-init list, so it must only *create* closures over
  // `this` — captures_ is not touched until run_unit.
  exp::QosExperimentConfig hook_probes(exp::QosExperimentConfig config);

  std::vector<RunCapture> captures_;
  LeaderReport report_;
  exp::QosWorkload qos_;  // must follow captures_ (probes reference them)
};

// Structural invariants every detector must satisfy under any scenario:
//   leaderless-nonnegative / wrong-leader-nonnegative / finite-scores
//   leaderless-bounded-by-downtime   leaderless_ms ≤ downtime_ms (a lane
//                                    is leaderless only while node 0 is
//                                    actually down)
//   leaderless-bounded-by-td         leaderless_detected_ms ≤ pooled T_D
//                                    sum (each detected outage's leaderless
//                                    prefix is that crash's T_D sample)
//   leaderless-zero-without-crashes  no crashes ⇒ leaderless == 0 and
//                                    failovers == 0
//   flap-failover-consistency        failovers ≤ flaps
// Returns every violation found (empty == all hold).
std::vector<exp::InvariantViolation> leader_invariant_violations(
    const LeaderReport& report);

// Per-detector score table (rows in suite order).
stats::TableWriter leader_table(const LeaderReport& report);

// The rendered leader report + the embedded QoS fingerprint. Equal
// fingerprints mean equal reports; the determinism matrix compares these.
std::string leader_report_fingerprint(const LeaderReport& report);

// Registers the built-in workload factories ("qos", "leader-election")
// with exp::register_workload(). Idempotent; the CLI and tests call it
// before exp::make_workload() (static registration would be dropped by
// the archive linker).
void register_builtin_workloads();

}  // namespace fdqos::workload
